//! Supervised execution: checkpointed retry with graceful degradation.
//!
//! [`run_supervised`] wraps the threaded pipe executor in a recovery loop.
//! The double-buffered global grid already *is* a checkpoint: workers only
//! ever read the `cur` buffer of a fused block and write the spare one, so
//! when a block fails, `cur` still holds the exact grid as of the last
//! fused-block barrier. The supervisor tears the pool down through a
//! cooperative [`CancelToken`] (no worker thread outlives the run), rolls
//! back to that barrier, and retries the remaining iterations with bounded
//! exponential backoff. After [`ExecPolicy::max_retries`] failed retries it
//! degrades to the sequential [`run_pipe_shared`](crate::run_pipe_shared)
//! executor — provably equivalent, since both executors are bit-exact
//! against the reference for any iteration count, and stencil iteration
//! composes: `reference(n − k) ∘ reference(k) = reference(n)`.
//!
//! Every attempt is recorded in the returned [`RunReport`]: which executor
//! ran, from which iteration, what fault ended it, wall time, and whether
//! any worker thread had to be abandoned (with cooperative cancellation
//! none should be).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use stencilcl_grid::Partition;
use stencilcl_lang::{GridState, Program};
use stencilcl_telemetry::{Counter, Disabled, EnvConfig, TraceSink};

use crate::faults::FaultPlan;
use crate::integrity::RunLimits;
use crate::options::{EngineKind, ExecOptions};
use crate::persist::CheckpointWriter;
use crate::pipeshare::pipe_shared_impl;
use crate::threaded::pool_run;
use crate::ExecError;

/// Cooperative cancellation handle shared between a pool run and its
/// workers: every potentially-blocking pipe operation re-checks it on a
/// short tick, so a cancelled pool drains within one tick of each worker's
/// current compute finishing.
#[derive(Debug, Clone, Default)]
pub(crate) struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Orders every worker observing this token to exit.
    pub(crate) fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Deadlines and recovery limits governing the threaded executor and
/// [`run_supervised`] — the replacement for the watchdog/drain constants
/// that used to be hardcoded in the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPolicy {
    /// How long the collector waits for any worker to report a fused block
    /// before declaring the pipeline wedged
    /// ([`ExecError::PipeStall`](crate::ExecError)).
    pub watchdog: Duration,
    /// After one worker has already failed, how long to wait for the
    /// cascade to flush the remaining workers' reports.
    pub drain: Duration,
    /// On error teardown, how long to wait for cancelled workers to exit
    /// before abandoning (leaking) the stragglers.
    pub teardown_grace: Duration,
    /// Checkpointed retries allowed after the first failed threaded
    /// attempt before degrading (or giving up).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_max: Duration,
    /// Whether to degrade to the sequential pipe executor once retries are
    /// exhausted; when `false`, [`run_supervised`] returns
    /// [`ExecError::RetriesExhausted`](crate::ExecError) instead.
    pub sequential_fallback: bool,
    /// Wall-clock budget for the whole run, shared across supervised
    /// retries (the clock starts once, before the first attempt). Checked
    /// cooperatively at fused-block barriers and inside the pipe tick;
    /// when it elapses the run fails with the permanent
    /// [`ExecError::DeadlineExceeded`](crate::ExecError) carrying the
    /// completed-iteration count. `None` (the default) means unbounded.
    pub deadline: Option<Duration>,
    /// Spatial tile edge (cells) for the temporally blocked reference
    /// driver: `Some(t)` makes [`run_reference_opts`](crate::run_reference_opts)
    /// sweep trapezoid tiles of roughly `t` cells per axis, fusing as many
    /// iterations per tile as the stencil cone allows. `None` (the
    /// default) runs the plain whole-grid sweep.
    pub tile: Option<usize>,
    /// Fused iterations per temporal block for the blocked executors:
    /// `Some(h)` fuses exactly `h` iterations per time-tile (clamped to
    /// the run length) **and forces blocking on** — the model-derived
    /// auto-disable of
    /// [`run_reference_opts`](crate::run_reference_opts) only applies
    /// when the depth is picked automatically. `None` (the default) lets
    /// the stencil's cone math choose.
    pub block_depth: Option<u64>,
    /// Worker-thread count of the blocked-parallel tile pool
    /// ([`run_blocked_parallel`](crate::run_blocked_parallel)): `None`
    /// (the default) sizes the pool from the host's available
    /// parallelism.
    pub threads: Option<usize>,
    /// Seed for the decorrelated-jitter retry backoff. `None` (the
    /// default) seeds from process entropy — concurrent supervisors desync
    /// their retry storms; `Some(seed)` makes the sleep sequence
    /// reproducible for tests.
    pub jitter_seed: Option<u64>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            watchdog: Duration::from_secs(30),
            drain: Duration::from_secs(2),
            teardown_grace: Duration::from_secs(5),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
            sequential_fallback: true,
            deadline: None,
            tile: None,
            block_depth: None,
            threads: None,
            jitter_seed: None,
        }
    }
}

impl ExecPolicy {
    /// Deterministic exponential backoff before 0-based retry `retry`,
    /// clamped to [`Self::backoff_max`] — the *envelope* of the jittered
    /// backoff the supervisor actually sleeps (see [`DecorrelatedJitter`]).
    pub fn backoff(&self, retry: u32) -> Duration {
        (self.backoff_base * (1u32 << retry.min(20))).min(self.backoff_max)
    }

    /// Defaults overridden by the process environment (parsed once):
    /// `STENCILCL_WATCHDOG_MS`, `STENCILCL_DRAIN_MS`,
    /// `STENCILCL_MAX_RETRIES`, `STENCILCL_DEADLINE_MS`, `STENCILCL_TILE`.
    ///
    /// The snapshot is frozen on first read, so callers layering CLI flags
    /// on top must apply them *after* this call (see
    /// [`ExecPolicy::from_config`] for an injectable variant) — flags
    /// always beat the frozen env.
    pub fn from_env() -> ExecPolicy {
        ExecPolicy::from_config(EnvConfig::get())
    }

    /// Defaults overridden by an explicit [`EnvConfig`] — the testable
    /// seam behind [`ExecPolicy::from_env`]: callers that must guarantee
    /// CLI-flag precedence build the policy from the frozen snapshot here,
    /// then overwrite fields from their flags.
    pub fn from_config(cfg: &EnvConfig) -> ExecPolicy {
        let mut policy = ExecPolicy::default();
        if let Some(ms) = cfg.watchdog_ms {
            policy.watchdog = Duration::from_millis(ms);
        }
        if let Some(ms) = cfg.drain_ms {
            policy.drain = Duration::from_millis(ms);
        }
        if let Some(n) = cfg.max_retries {
            policy.max_retries = n;
        }
        if let Some(ms) = cfg.deadline_ms {
            policy.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(t) = cfg.tile {
            policy.tile = Some(t);
        }
        if let Some(h) = cfg.block_depth {
            policy.block_depth = Some(h);
        }
        if let Some(n) = cfg.threads {
            policy.threads = Some(n);
        }
        policy
    }
}

/// Decorrelated-jitter retry backoff (the AWS architecture-blog variant):
/// each sleep is drawn uniformly from `[backoff_base, min(backoff_max,
/// 3 × previous_sleep)]`. Pure exponential backoff keeps lock-step
/// supervisors colliding on every retry round; decorrelating the sleeps
/// spreads them out while preserving the bounded-growth envelope
/// (`sleep ∈ [backoff_base, backoff_max]` always).
///
/// Randomness is a self-contained xorshift64\* — no RNG dependency — and
/// [`ExecPolicy::jitter_seed`] pins the sequence for deterministic tests.
#[derive(Debug)]
pub struct DecorrelatedJitter {
    prev: Duration,
    state: u64,
}

impl DecorrelatedJitter {
    /// A jitter sequence for `policy`, seeded from
    /// [`ExecPolicy::jitter_seed`] or process entropy.
    pub fn new(policy: &ExecPolicy) -> Self {
        let seed = policy.jitter_seed.unwrap_or_else(|| {
            // RandomState carries the process's hash entropy; hashing a
            // fixed value extracts a cheap per-instance seed without any
            // RNG dependency.
            use std::hash::{BuildHasher, Hasher};
            let mut h = std::collections::hash_map::RandomState::new().build_hasher();
            h.write_u64(0x5741_4b45);
            h.finish()
        });
        // Splitmix64 scramble: adjacent seeds (41, 42, 43…) must yield
        // unrelated sequences, and xorshift's zero fixed point is avoided.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DecorrelatedJitter {
            prev: policy.backoff_base,
            state: z.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next sleep: uniform in `[base, min(max, 3 × previous)]`, with
    /// the drawn value feeding the next interval's upper bound.
    pub fn next_sleep(&mut self, policy: &ExecPolicy) -> Duration {
        let hi = (self.prev * 3).min(policy.backoff_max);
        let lo = policy.backoff_base.min(hi);
        let span = hi.saturating_sub(lo).as_nanos() as u64;
        let offset = if span == 0 {
            0
        } else {
            self.next_u64() % (span + 1)
        };
        let sleep = lo + Duration::from_nanos(offset);
        self.prev = sleep;
        sleep
    }
}

/// Which executor a supervised attempt ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptMode {
    /// The concurrent worker-pool executor.
    Threaded,
    /// The sequential pipe executor (degradation path).
    Sequential,
}

/// One attempt of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Which executor ran.
    pub mode: AttemptMode,
    /// Global iteration the attempt resumed from (its checkpoint).
    pub start_iteration: u64,
    /// Iterations the attempt completed and checkpointed.
    pub iterations_completed: u64,
    /// The classified fault that ended the attempt, `None` on success.
    pub fault: Option<ExecError>,
    /// Wall time of the attempt, including pool teardown.
    pub wall: Duration,
    /// Worker threads that outlived the teardown grace period and were
    /// abandoned (zero under cooperative cancellation).
    pub leaked_workers: usize,
}

/// How a supervised run ultimately completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPath {
    /// The first threaded attempt succeeded.
    Threaded,
    /// A checkpointed threaded retry succeeded.
    Retried,
    /// The run degraded to the sequential executor.
    Sequential,
}

/// The full story of one [`run_supervised`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Every attempt, in order; the last one completed the run.
    pub attempts: Vec<Attempt>,
    /// Which rung of the degradation ladder finished the run.
    pub path: RecoveryPath,
}

impl RunReport {
    /// Failed attempts that the run recovered from.
    pub fn recoveries(&self) -> usize {
        self.attempts.iter().filter(|a| a.fault.is_some()).count()
    }

    /// The classified faults of the failed attempts, in order.
    pub fn faults_seen(&self) -> Vec<&ExecError> {
        self.attempts
            .iter()
            .filter_map(|a| a.fault.as_ref())
            .collect()
    }

    /// Whether the run fell back to the sequential executor.
    pub fn degraded(&self) -> bool {
        self.path == RecoveryPath::Sequential
    }

    /// Worker threads abandoned across all attempts.
    pub fn leaked_workers(&self) -> usize {
        self.attempts.iter().map(|a| a.leaked_workers).sum()
    }

    /// Total wall time across all attempts (excluding retry backoff).
    pub fn total_wall(&self) -> Duration {
        self.attempts.iter().map(|a| a.wall).sum()
    }
}

// Structured JSON for `--report-json`: stable lower-case tags for the
// enums, durations flattened to `wall_ms` floats (the vendored serde has no
// `Duration` representation, and milliseconds are what report consumers
// plot anyway).

impl serde::Serialize for AttemptMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                AttemptMode::Threaded => "threaded",
                AttemptMode::Sequential => "sequential",
            }
            .to_string(),
        )
    }
}

impl serde::Serialize for RecoveryPath {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                RecoveryPath::Threaded => "threaded",
                RecoveryPath::Retried => "retried",
                RecoveryPath::Sequential => "sequential",
            }
            .to_string(),
        )
    }
}

impl serde::Serialize for Attempt {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("mode".to_string(), self.mode.to_value()),
            (
                "start_iteration".to_string(),
                serde::Value::UInt(self.start_iteration),
            ),
            (
                "iterations_completed".to_string(),
                serde::Value::UInt(self.iterations_completed),
            ),
            ("fault".to_string(), self.fault.to_value()),
            (
                "wall_ms".to_string(),
                serde::Value::Float(self.wall.as_secs_f64() * 1e3),
            ),
            (
                "leaked_workers".to_string(),
                serde::Value::UInt(self.leaked_workers as u64),
            ),
        ])
    }
}

impl serde::Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("path".to_string(), self.path.to_value()),
            (
                "recoveries".to_string(),
                serde::Value::UInt(self.recoveries() as u64),
            ),
            ("degraded".to_string(), serde::Value::Bool(self.degraded())),
            (
                "leaked_workers".to_string(),
                serde::Value::UInt(self.leaked_workers() as u64),
            ),
            (
                "total_wall_ms".to_string(),
                serde::Value::Float(self.total_wall().as_secs_f64() * 1e3),
            ),
            ("attempts".to_string(), self.attempts.to_value()),
        ])
    }
}

/// Runs the pipe design under supervision: threaded execution with
/// checkpointed retry on transient faults, then graceful degradation to the
/// sequential executor (see the module docs for the recovery ladder).
///
/// The grid in `state` is identical to what
/// [`run_threaded`](crate::run_threaded) would have produced fault-free —
/// recovery never changes the computed values, only how they are computed.
///
/// # Errors
///
/// Non-transient errors (bad configuration, diagonal stencils, interpreter
/// failures) are returned immediately — retrying cannot fix them. Transient
/// faults ([`ExecError::WorkerPanic`](crate::ExecError),
/// [`ExecError::PipeStall`](crate::ExecError), pipe-protocol skew) only
/// surface as [`ExecError::RetriesExhausted`](crate::ExecError) when the
/// retry budget is spent and [`ExecPolicy::sequential_fallback`] is off.
pub fn run_supervised(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    policy: &ExecPolicy,
) -> Result<RunReport, ExecError> {
    let opts = ExecOptions::from_env().policy(policy.clone());
    run_supervised_opts(program, partition, state, &opts)
}

/// [`run_supervised_opts`] that always returns the [`RunReport`], even when
/// the run fails: the report's attempts record how far the run got and what
/// ended it (e.g. the last healthy checkpoint preserved in `state` after a
/// [`ExecError::NumericDivergence`](crate::ExecError) abort, or the
/// progress made before [`ExecError::DeadlineExceeded`](crate::ExecError)).
pub fn run_supervised_full(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
) -> (RunReport, Result<(), ExecError>) {
    dispatch(program, partition, state, opts, &Arc::new(FaultPlan::new()))
}

/// [`run_supervised`] with explicit [`ExecOptions`]: engine choice, policy,
/// and (optionally) a telemetry recorder. Each checkpointed retry bumps the
/// recorder's `retries` counter; the degradation path keeps the same engine
/// and sink, so a traced run stays observable end to end.
///
/// # Errors
///
/// Same conditions as [`run_supervised`].
pub fn run_supervised_opts(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<RunReport, ExecError> {
    let (report, result) = run_supervised_full(program, partition, state, opts);
    result.map(|()| report)
}

/// [`run_supervised`] with a deterministic [`FaultPlan`] injected into the
/// worker pool — the chaos-testing entry point. Pass the plan in an [`Arc`]
/// and keep a clone to inspect [`FaultPlan::fired`] afterwards.
///
/// # Errors
///
/// Same conditions as [`run_supervised`].
#[cfg(feature = "fault-injection")]
pub fn run_supervised_injected(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    policy: &ExecPolicy,
    faults: &Arc<FaultPlan>,
) -> Result<RunReport, ExecError> {
    let opts = ExecOptions::from_env().policy(policy.clone());
    let (report, result) = dispatch(program, partition, state, &opts, faults);
    result.map(|()| report)
}

/// [`run_supervised_injected`] that always returns the [`RunReport`] —
/// chaos tests asserting on the attempt history of *failed* runs (aborted
/// deadlines, permanent divergence) use this entry point.
#[cfg(feature = "fault-injection")]
pub fn run_supervised_injected_full(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> (RunReport, Result<(), ExecError>) {
    dispatch(program, partition, state, opts, faults)
}

/// [`run_supervised_injected`] with explicit [`ExecOptions`] — chaos tests
/// that also record telemetry.
///
/// # Errors
///
/// Same conditions as [`run_supervised`].
#[cfg(feature = "fault-injection")]
pub fn run_supervised_injected_opts(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> Result<RunReport, ExecError> {
    let (report, result) = dispatch(program, partition, state, opts, faults);
    result.map(|()| report)
}

/// Global progress already banked before this supervision loop starts —
/// zero for a fresh run; the checkpoint's cursor when resuming, so fault
/// triggers, slab sequence numbers, and new checkpoint manifests all
/// continue the original run's coordinates.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ResumeBase {
    /// Iterations sealed in the checkpoint the run resumes from.
    pub iterations: u64,
    /// Fused-block sequence base.
    pub blocks: u64,
}

/// Monomorphizes the supervision loop against the chosen sink. The run's
/// integrity envelope (deadline clock, health policy, checksum switch) is
/// anchored here, once, so every retry shares the same wall-clock budget.
fn dispatch(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> (RunReport, Result<(), ExecError>) {
    dispatch_with(
        program,
        partition,
        state,
        opts,
        faults,
        ResumeBase::default(),
    )
}

/// [`dispatch`] with an explicit [`ResumeBase`] — the seam
/// [`resume_supervised`](crate::resume_supervised) re-enters through.
pub(crate) fn dispatch_with(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
    base: ResumeBase,
) -> (RunReport, Result<(), ExecError>) {
    let limits = opts.limits();
    let writer = CheckpointWriter::from_options(program, opts, &base, limits.deadline, faults);
    match &opts.trace {
        Some(rec) => supervised(
            program,
            partition,
            state,
            &opts.policy,
            faults,
            opts.engine,
            opts.lanes,
            limits,
            base.blocks,
            writer.as_ref(),
            &rec.clone(),
        ),
        None => supervised(
            program,
            partition,
            state,
            &opts.policy,
            faults,
            opts.engine,
            opts.lanes,
            limits,
            base.blocks,
            writer.as_ref(),
            &Disabled,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn supervised<S: TraceSink>(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    policy: &ExecPolicy,
    faults: &Arc<FaultPlan>,
    engine: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    block_base: u64,
    ckpt: Option<&CheckpointWriter>,
    sink: &S,
) -> (RunReport, Result<(), ExecError>) {
    let total = program.iterations;
    let mut attempts: Vec<Attempt> = Vec::new();
    let mut done = 0u64; // iterations completed and checkpointed in `state`
    let mut blocks = block_base; // global fused-block index for fault triggers
    let mut failures = 0u32;
    let mut jitter = DecorrelatedJitter::new(policy);
    loop {
        let rest = program.with_iterations(total - done);
        let start = Instant::now();
        if let Some(w) = ckpt {
            w.begin_attempt(done);
        }
        match pool_run(
            &rest,
            partition,
            state,
            policy,
            faults,
            blocks,
            engine,
            lanes,
            limits.clone(),
            ckpt,
            sink,
        ) {
            Ok(run) => {
                if let Some(w) = ckpt {
                    w.finalize(state, blocks + run.blocks, sink);
                }
                attempts.push(Attempt {
                    mode: AttemptMode::Threaded,
                    start_iteration: done,
                    iterations_completed: run.iterations,
                    fault: None,
                    wall: start.elapsed(),
                    leaked_workers: run.leaked,
                });
                let path = if failures == 0 {
                    RecoveryPath::Threaded
                } else {
                    RecoveryPath::Retried
                };
                return (RunReport { attempts, path }, Ok(()));
            }
            Err((mut e, run)) => {
                // Attempt-local progress coordinates become run-global ones
                // before anything is recorded or returned.
                globalize(&mut e, done);
                done += run.iterations;
                blocks += run.blocks;
                attempts.push(Attempt {
                    mode: AttemptMode::Threaded,
                    start_iteration: done - run.iterations,
                    iterations_completed: run.iterations,
                    fault: Some(e.clone()),
                    wall: start.elapsed(),
                    leaked_workers: run.leaked,
                });
                let path = if failures == 0 {
                    RecoveryPath::Threaded
                } else {
                    RecoveryPath::Retried
                };
                if !transient(&e) {
                    // Permanent faults (divergence, deadline, bad config)
                    // must not burn retries: deterministic recompute would
                    // reproduce them and deadlines cannot be retried into
                    // more time. `state` keeps the last healthy checkpoint.
                    return (RunReport { attempts, path }, Err(e));
                }
                if failures >= policy.max_retries {
                    if !policy.sequential_fallback {
                        let err = ExecError::RetriesExhausted {
                            attempts: failures + 1,
                            last: Box::new(e),
                        };
                        return (RunReport { attempts, path }, Err(err));
                    }
                    // Degrade: finish the remaining iterations sequentially
                    // from the checkpoint, keeping the run's engine and
                    // sink. No pool, no pipes to wedge.
                    let rest = program.with_iterations(total - done);
                    let start = Instant::now();
                    let result = pipe_shared_impl(
                        &rest,
                        partition,
                        state,
                        engine,
                        lanes,
                        limits.clone(),
                        sink,
                    );
                    let (fault, completed) = match result {
                        Ok(()) => (None, total - done),
                        Err(mut e) => {
                            globalize(&mut e, done);
                            let completed = sequential_completed(&e, done);
                            (Some(e), completed)
                        }
                    };
                    if let (None, Some(w)) = (&fault, ckpt) {
                        w.finalize(state, blocks, sink);
                    }
                    attempts.push(Attempt {
                        mode: AttemptMode::Sequential,
                        start_iteration: done,
                        iterations_completed: completed,
                        fault: fault.clone(),
                        wall: start.elapsed(),
                        leaked_workers: 0,
                    });
                    let report = RunReport {
                        attempts,
                        path: RecoveryPath::Sequential,
                    };
                    return match fault {
                        None => (report, Ok(())),
                        Some(e) => (report, Err(e)),
                    };
                }
                failures += 1;
                if S::ACTIVE {
                    sink.add(Counter::Retries, 1);
                }
                // Decorrelated jitter instead of pure doubling: concurrent
                // supervisors retrying the same contended resource desync
                // instead of colliding again in lock-step.
                thread::sleep(jitter.next_sleep(policy));
            }
        }
    }
}

/// Rebases an error's attempt-local progress coordinates onto the global
/// iteration counter (`base` = the attempt's start iteration).
pub(crate) fn globalize(e: &mut ExecError, base: u64) {
    match e {
        ExecError::NumericDivergence { iteration, .. } => *iteration += base,
        ExecError::DeadlineExceeded { completed } | ExecError::JobCancelled { completed } => {
            *completed += base;
        }
        _ => {}
    }
}

/// Iterations a failed sequential attempt checkpointed, recovered from the
/// (already globalized) error it returned.
fn sequential_completed(e: &ExecError, base: u64) -> u64 {
    match e {
        ExecError::NumericDivergence { iteration, .. } => iteration - base,
        ExecError::DeadlineExceeded { completed } | ExecError::JobCancelled { completed } => {
            completed - base
        }
        _ => 0,
    }
}

/// Whether a failure is plausibly transient — worth a checkpointed retry.
/// Configuration, geometry, and interpreter errors are deterministic and
/// retrying them would reproduce the same failure; numeric divergence is
/// deterministic too, and a blown deadline cannot be retried into more
/// wall-clock time. Slab corruption *is* transient: the corruption happened
/// in flight, so recomputing the block from the checkpoint repairs it.
fn transient(e: &ExecError) -> bool {
    match e {
        ExecError::WorkerPanic { .. }
        | ExecError::PipeStall { .. }
        | ExecError::Cancelled
        | ExecError::SlabCorrupt { .. } => true,
        ExecError::BadConfiguration { detail } => {
            detail.contains("protocol skew") || detail.contains("hung up")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_reference;
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 2.0;
        for d in 0..p.dim() {
            v = v * 23.0 + p.coord(d) as f64;
        }
        (v * 0.004).sin()
    }

    #[test]
    fn fault_free_supervision_is_a_single_threaded_attempt() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(7);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![8, 8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        let mut got = GridState::new(&p, init);
        let report = run_supervised(&p, &partition, &mut got, &ExecPolicy::default()).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
        assert_eq!(report.path, RecoveryPath::Threaded);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.recoveries(), 0);
        assert!(!report.degraded());
        assert_eq!(report.leaked_workers(), 0);
        assert_eq!(report.attempts[0].iterations_completed, 7);
        assert_eq!(report.attempts[0].mode, AttemptMode::Threaded);
    }

    #[test]
    fn single_iteration_supervision_matches_reference() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(1);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        let mut got = GridState::new(&p, init);
        let report = run_supervised(&p, &partition, &mut got, &ExecPolicy::default()).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
        assert_eq!(report.attempts[0].iterations_completed, 1);
    }

    #[test]
    fn configuration_errors_are_not_retried() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        let err = run_supervised(&p, &partition, &mut s, &ExecPolicy::default()).unwrap_err();
        assert!(matches!(err, ExecError::BadConfiguration { .. }));
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let policy = ExecPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(35),
            ..ExecPolicy::default()
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(35));
        assert_eq!(policy.backoff(31), Duration::from_millis(35));
    }

    #[test]
    fn jittered_backoff_stays_inside_its_envelope_and_is_seedable() {
        let policy = ExecPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            jitter_seed: Some(42),
            ..ExecPolicy::default()
        };
        let mut jitter = DecorrelatedJitter::new(&policy);
        let mut prev = policy.backoff_base;
        let mut sleeps = Vec::new();
        for _ in 0..200 {
            let s = jitter.next_sleep(&policy);
            // Bounds: never below the base, never above the max, and never
            // above 3x the previous sleep (the decorrelated growth cap).
            assert!(s >= policy.backoff_base, "{s:?} under base");
            assert!(s <= policy.backoff_max, "{s:?} over max");
            assert!(
                s <= (prev * 3).min(policy.backoff_max),
                "{s:?} over 3x{prev:?}"
            );
            prev = s;
            sleeps.push(s);
        }
        // Same seed reproduces the exact sequence...
        let mut again = DecorrelatedJitter::new(&policy);
        let replay: Vec<_> = (0..200).map(|_| again.next_sleep(&policy)).collect();
        assert_eq!(sleeps, replay);
        // ...a different seed diverges, and the sleeps actually vary
        // (decorrelated, not a deterministic ladder).
        let mut other = DecorrelatedJitter::new(&ExecPolicy {
            jitter_seed: Some(43),
            ..policy.clone()
        });
        let diverged: Vec<_> = (0..200).map(|_| other.next_sleep(&policy)).collect();
        assert_ne!(sleeps, diverged);
        let distinct: std::collections::BTreeSet<_> = sleeps.iter().collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct sleeps",
            distinct.len()
        );
    }

    #[test]
    fn zero_width_jitter_interval_degenerates_to_the_base() {
        // base == max pins every sleep to that single value.
        let policy = ExecPolicy {
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(5),
            jitter_seed: Some(7),
            ..ExecPolicy::default()
        };
        let mut jitter = DecorrelatedJitter::new(&policy);
        for _ in 0..10 {
            assert_eq!(jitter.next_sleep(&policy), Duration::from_millis(5));
        }
    }

    #[test]
    fn reports_serialize_to_structured_json() {
        let report = RunReport {
            attempts: vec![
                Attempt {
                    mode: AttemptMode::Threaded,
                    start_iteration: 0,
                    iterations_completed: 3,
                    fault: Some(ExecError::WorkerPanic { kernel: 2 }),
                    wall: Duration::from_millis(12),
                    leaked_workers: 0,
                },
                Attempt {
                    mode: AttemptMode::Sequential,
                    start_iteration: 3,
                    iterations_completed: 4,
                    fault: None,
                    wall: Duration::from_millis(40),
                    leaked_workers: 1,
                },
            ],
            path: RecoveryPath::Sequential,
        };
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"path\":\"sequential\""), "{json}");
        assert!(json.contains("\"recoveries\":1"), "{json}");
        assert!(json.contains("\"degraded\":true"), "{json}");
        assert!(json.contains("\"kind\":\"WorkerPanic\""), "{json}");
        assert!(json.contains("\"fault\":null"), "{json}");
        assert!(json.contains("\"leaked_workers\":1"), "{json}");
        assert!(json.contains("wall_ms"), "{json}");
    }

    #[test]
    fn transient_classification_matches_the_fault_taxonomy() {
        assert!(transient(&ExecError::PipeStall { kernel: 0 }));
        assert!(transient(&ExecError::WorkerPanic { kernel: 1 }));
        assert!(transient(&ExecError::Cancelled));
        assert!(transient(&ExecError::config(
            "kernel 2: pipe protocol skew"
        )));
        assert!(transient(&ExecError::config("pipe producer hung up")));
        assert!(transient(&ExecError::SlabCorrupt {
            kernel: 0,
            step: (1, 0)
        }));
        assert!(!transient(&ExecError::config("bad partition")));
        assert!(!transient(&ExecError::DiagonalAccess {
            statement: "A".into()
        }));
        // Deterministic recompute reproduces divergence, and a blown
        // deadline cannot be retried into more time: both are permanent.
        assert!(!transient(&ExecError::NumericDivergence {
            kernel: 0,
            iteration: 1,
            cell: vec![0],
            value: f64::NAN
        }));
        assert!(!transient(&ExecError::DeadlineExceeded { completed: 0 }));
        // External cancellation is final: retrying would re-run work the
        // client already abandoned.
        assert!(!transient(&ExecError::JobCancelled { completed: 0 }));
    }

    #[test]
    fn globalize_rebases_progress_coordinates() {
        let mut e = ExecError::NumericDivergence {
            kernel: 2,
            iteration: 3,
            cell: vec![1, 1],
            value: f64::INFINITY,
        };
        globalize(&mut e, 10);
        assert!(matches!(
            e,
            ExecError::NumericDivergence { iteration: 13, .. }
        ));
        assert_eq!(sequential_completed(&e, 10), 3);
        let mut d = ExecError::DeadlineExceeded { completed: 4 };
        globalize(&mut d, 6);
        assert_eq!(d, ExecError::DeadlineExceeded { completed: 10 });
        assert_eq!(sequential_completed(&d, 6), 4);
        let mut c = ExecError::JobCancelled { completed: 2 };
        globalize(&mut c, 5);
        assert_eq!(c, ExecError::JobCancelled { completed: 7 });
        assert_eq!(sequential_completed(&c, 5), 2);
        let mut other = ExecError::Cancelled;
        globalize(&mut other, 99);
        assert_eq!(other, ExecError::Cancelled);
        assert_eq!(sequential_completed(&other, 99), 0);
    }

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::default();
        assert!(!t.is_cancelled());
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }
}
