use stencilcl_grid::{Partition, Point};
use stencilcl_lang::{GridState, Program};

use crate::{run_overlapped, run_pipe_shared, run_reference, run_threaded, ExecError};

/// Which executor to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Baseline overlapped tiling.
    Overlapped,
    /// Sequential pipe-shared execution.
    PipeShared,
    /// Threaded pipe-shared execution (real channels).
    Threaded,
}

impl ExecMode {
    /// All executor modes.
    pub const ALL: [ExecMode; 3] = [
        ExecMode::Overlapped,
        ExecMode::PipeShared,
        ExecMode::Threaded,
    ];
}

/// Runs `mode` under `partition` and the naive reference side by side from
/// the same `init` state and returns the maximum absolute difference across
/// all grids — `0.0` for a correct design (all executors evaluate each cell's
/// update with the same operation order, so agreement is exact, not just
/// within tolerance).
///
/// # Errors
///
/// Propagates executor errors (bad configuration, diagonal stencils, ...).
///
/// # Example
///
/// ```
/// use stencilcl_exec::{verify_design, ExecMode};
/// use stencilcl_grid::{Design, DesignKind, Extent, Partition};
/// use stencilcl_lang::{programs, StencilFeatures};
///
/// let p = programs::jacobi_1d().with_extent(Extent::new1(32)).with_iterations(4);
/// let f = StencilFeatures::extract(&p)?;
/// let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8])?;
/// let partition = Partition::new(p.extent(), &d, &f.growth)?;
/// let diff = verify_design(&p, &partition, ExecMode::Overlapped, |_, pt| pt.coord(0) as f64)?;
/// assert_eq!(diff, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn verify_design(
    program: &Program,
    partition: &Partition,
    mode: ExecMode,
    mut init: impl FnMut(&str, &Point) -> f64,
) -> Result<f64, ExecError> {
    let mut expect = GridState::new(program, &mut init);
    run_reference(program, &mut expect)?;
    let mut got = GridState::new(program, &mut init);
    match mode {
        ExecMode::Overlapped => run_overlapped(program, partition, &mut got)?,
        ExecMode::PipeShared => run_pipe_shared(program, partition, &mut got)?,
        ExecMode::Threaded => run_threaded(program, partition, &mut got)?,
    }
    Ok(expect.max_abs_diff(&got)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Design, DesignKind, Extent};
    use stencilcl_lang::programs;

    #[test]
    fn verify_covers_all_modes() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(16, 16))
            .with_iterations(4);
        let f = stencilcl_lang::StencilFeatures::extract(&p).unwrap();
        for mode in ExecMode::ALL {
            let kind = match mode {
                ExecMode::Overlapped => DesignKind::Baseline,
                _ => DesignKind::PipeShared,
            };
            let d = Design::equal(kind, 2, vec![2, 2], vec![4, 4]).unwrap();
            let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
            let diff = verify_design(&p, &partition, mode, |_, pt| {
                (pt.coord(0) + pt.coord(1)) as f64
            })
            .unwrap();
            assert_eq!(diff, 0.0, "{mode:?}");
        }
    }

    #[test]
    fn mismatched_mode_and_design_error() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(2);
        let f = stencilcl_lang::StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![4]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        assert!(verify_design(&p, &partition, ExecMode::PipeShared, |_, _| 0.0).is_err());
    }
}
