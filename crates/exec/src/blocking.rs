//! Temporal (trapezoid) blocking for the reference executor.
//!
//! The paper's accelerator designs hide iteration latency two ways: the
//! baseline overlapped tiling recomputes a halo cone per fused pass, and the
//! pipe-shared designs keep persistent per-kernel windows fed by pipes. On
//! the host side the reference executor normally sweeps the full grid once
//! per iteration; for grids that outgrow the cache that wastes bandwidth —
//! every iteration streams every array through memory.
//!
//! [`run_blocked_reference`] is the cache-blocked rendition: the grid is cut
//! into square-ish tiles of [`ExecPolicy::tile`](crate::ExecPolicy) cells
//! per axis, and each tile independently advances `h` fused iterations by
//! expanding its footprint into the same trapezoid cone the overlapped
//! executor uses ([`DomainPlan`]) — grid-boundary faces stay fixed, interior
//! faces grow by the stencil's per-iteration halo. The block depth `h` is
//! sized from the cone math: deep enough to amortize the tile reload, but
//! shallow enough that the redundant halo (which grows linearly with `h`)
//! stays a fraction of the tile.
//!
//! Redundant work is *accounted*, not hidden: every cell a tile evaluates
//! outside its own output rect increments
//! [`Counter::RedundantCells`] (alongside the total in
//! [`Counter::CellsComputed`]), so the A/B bench can report the recompute
//! overhead the blocking trades for locality.
//!
//! Results are bit-exact with the plain reference loop by the same argument
//! as the overlapped executor's: the trapezoid changes *where* values are
//! computed, never *what* they are — every domain cell is evaluated from
//! values carrying exactly the reference iteration history.

use stencilcl_grid::{DesignKind, Face, FaceKind, Point, Rect, TileInfo};
use stencilcl_lang::{GridState, Interpreter, Program, StencilFeatures};
use stencilcl_telemetry::{Counter, Disabled, TracePhase, TraceSink};

use crate::domains::DomainPlan;
use crate::engine::{compile_with_env_unroll, Engine};
use crate::integrity::{scan_state, RunLimits};
use crate::options::{EngineKind, ExecOptions};
use crate::overlapped::window_extent;
use crate::window::{extract_window, write_back};
use crate::ExecError;

/// Picks the fused depth for one temporal block: the deepest `h` whose
/// one-sided cone growth `h · g` stays within half the tile edge (so a
/// tile's trapezoid base at most doubles its footprint per axis), clamped
/// to `1..=iterations`. Pointwise stencils (`g == 0`) have no cone and can
/// fuse the whole run.
pub(crate) fn block_depth(tile: usize, growth: u64, iterations: u64) -> u64 {
    if iterations == 0 {
        return 0;
    }
    if growth == 0 {
        return iterations;
    }
    (tile as u64 / (2 * growth)).clamp(1, iterations)
}

/// Cuts `grid_rect` into tiles of at most `tile` cells per axis and
/// classifies each face: grid-boundary faces stay
/// [`FaceKind::GridBoundary`] (fixed by the boundary condition), interior
/// cuts become [`FaceKind::RegionBoundary`] (halo loaded and recomputed,
/// exactly like the baseline design's inter-region faces).
pub(crate) fn block_tiles(grid_rect: &Rect, tile: usize) -> Result<Vec<TileInfo>, ExecError> {
    let dim = grid_rect.dim();
    let t = tile as i64;
    let counts: Vec<i64> = (0..dim)
        .map(|d| (grid_rect.len(d) as i64 + t - 1) / t)
        .collect();
    let mut tiles = Vec::new();
    let mut index = vec![0i64; dim];
    loop {
        let mut lo = Vec::with_capacity(dim);
        let mut hi = Vec::with_capacity(dim);
        let mut faces = Vec::with_capacity(2 * dim);
        for (d, &idx) in index.iter().enumerate() {
            let l = grid_rect.lo().coord(d) + idx * t;
            let h = (l + t).min(grid_rect.hi().coord(d));
            lo.push(l);
            hi.push(h);
            for high in [false, true] {
                let on_grid_edge = if high {
                    h == grid_rect.hi().coord(d)
                } else {
                    l == grid_rect.lo().coord(d)
                };
                faces.push(Face {
                    axis: d,
                    high,
                    kind: if on_grid_edge {
                        FaceKind::GridBoundary
                    } else {
                        FaceKind::RegionBoundary
                    },
                });
            }
        }
        let rect = Rect::new(Point::new(&lo)?, Point::new(&hi)?)?;
        let kernel = tiles.len();
        tiles.push(TileInfo::new(kernel, Point::new(&index)?, rect, faces));
        // Odometer over the tile grid, last axis fastest.
        let mut d = dim;
        loop {
            if d == 0 {
                return Ok(tiles);
            }
            d -= 1;
            index[d] += 1;
            if index[d] < counts[d] {
                break;
            }
            index[d] = 0;
        }
    }
}

/// The temporally blocked reference execution behind
/// [`run_reference_opts`](crate::run_reference_opts) when
/// [`ExecPolicy::tile`](crate::ExecPolicy) is set.
///
/// Blocking is not unconditionally a win: on a cache-resident grid the
/// plain sweep already runs at cache bandwidth and the trapezoid recompute
/// is pure loss. When [`ExecPolicy::block_depth`](crate::ExecPolicy) is
/// unset, the host cost model ([`stencilcl_model::should_block`]) prices
/// both alternatives and this driver silently falls back to the plain
/// reference loop if blocking is predicted to lose; an explicit
/// `block_depth` is an operator override that always blocks.
pub(crate) fn run_blocked_reference(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    let tile = opts
        .policy
        .tile
        .ok_or_else(|| ExecError::config("blocked reference requires ExecPolicy::tile"))?;
    if tile == 0 {
        return Err(ExecError::config("temporal tile size must be at least 1"));
    }
    if opts.policy.block_depth.is_none() {
        let features = StencilFeatures::extract(program)?;
        let g = (0..features.dim)
            .map(|d| features.growth.lo(d).max(features.growth.hi(d)))
            .max()
            .unwrap_or(0);
        let h = block_depth(tile, g, program.iterations);
        let host = stencilcl_model::HostParams::default();
        if !stencilcl_model::should_block(&features, tile as u64, h, &host) {
            return crate::reference::run_plain_reference(program, state, opts);
        }
    }
    let limits = opts.limits();
    match &opts.trace {
        Some(rec) => blocked_impl(
            program,
            state,
            tile,
            opts.policy.block_depth,
            opts.engine,
            opts.lanes,
            limits,
            &rec.clone(),
        ),
        None => blocked_impl(
            program,
            state,
            tile,
            opts.policy.block_depth,
            opts.engine,
            opts.lanes,
            limits,
            &Disabled,
        ),
    }
}

/// Pass/tile driver for the blocked reference execution: per temporal block,
/// snapshot the grid, advance every tile `h` fused iterations through its
/// own trapezoid cone, and write each tile's output rect back.
#[allow(clippy::too_many_arguments)]
fn blocked_impl<S: TraceSink>(
    program: &Program,
    state: &mut GridState,
    tile: usize,
    depth: Option<u64>,
    engine_kind: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    sink: &S,
) -> Result<(), ExecError> {
    let features = StencilFeatures::extract(program)?;
    let grid_rect = Rect::from_extent(&program.extent());
    let tiles = block_tiles(&grid_rect, tile)?;
    let g = (0..features.dim)
        .map(|d| features.growth.lo(d).max(features.growth.hi(d)))
        .max()
        .unwrap_or(0);
    let h = match depth {
        Some(d) if program.iterations > 0 => d.clamp(1, program.iterations),
        _ => block_depth(tile, g, program.iterations),
    };
    let updated: Vec<&str> = program.updated_grids();
    let scanned: Vec<String> = updated.iter().map(|s| s.to_string()).collect();
    let tile_index: Vec<(usize, Rect)> = if limits.health.enabled() {
        tiles.iter().map(|t| (t.kernel(), t.rect())).collect()
    } else {
        Vec::new()
    };
    let mut done = 0u64;
    while done < program.iterations {
        limits.check_deadline(done)?;
        let h_eff = h.min(program.iterations - done);
        let snapshot = state.clone();
        for t in &tiles {
            let dp = DomainPlan::new(&features, t, DesignKind::Baseline, h_eff, &grid_rect)?;
            let buffer = dp.buffer();
            let k = t.kernel();
            let read_t0 = sink.now();
            let local_program = program.with_extent(window_extent(&buffer)?);
            let mut local = extract_window(&snapshot, program, &local_program, &buffer)?;
            if S::ACTIVE {
                sink.add(
                    Counter::HaloBytes,
                    buffer.volume()
                        * std::mem::size_of::<f64>() as u64
                        * local_program.grids.len() as u64,
                );
                sink.span(k, 0, TracePhase::Read, read_t0, sink.now());
            }
            let compiled;
            let engine = match engine_kind {
                EngineKind::Interpreted => Engine::Interpreted(Interpreter::new(&local_program)),
                EngineKind::Compiled => {
                    compiled = compile_with_env_unroll(&local_program, lanes)?;
                    Engine::Compiled(&compiled)
                }
            };
            let origin = buffer.lo();
            for i in 1..=h_eff {
                let compute_t0 = sink.now();
                for s in 0..program.updates.len() {
                    let global_domain = dp.domain(i, s);
                    let domain = global_domain.translate(&-origin)?;
                    if S::ACTIVE {
                        sink.add(Counter::CellsComputed, domain.volume());
                        let own = global_domain.intersect(&t.rect())?.volume();
                        sink.add(Counter::RedundantCells, domain.volume() - own);
                    }
                    engine.apply_statement(&mut local, s, &domain)?;
                }
                if S::ACTIVE {
                    sink.span(
                        k,
                        0,
                        TracePhase::Compute {
                            iteration: done + i,
                        },
                        compute_t0,
                        sink.now(),
                    );
                }
            }
            let write_t0 = sink.now();
            write_back(state, &local, &updated, &origin, &t.rect())?;
            if S::ACTIVE {
                sink.span(k, 0, TracePhase::Write, write_t0, sink.now());
            }
        }
        if limits.health.enabled() {
            if let Err(e) = scan_state(&limits.health, state, &scanned, &tile_index, done, sink) {
                *state = snapshot;
                return Err(e);
            }
        }
        done += h_eff;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_reference, run_reference_opts, ExecPolicy};
    use stencilcl_grid::Extent;
    use stencilcl_lang::programs;
    use stencilcl_telemetry::Recorder;

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 2.0;
        for d in 0..p.dim() {
            v = v * 23.0 + p.coord(d) as f64;
        }
        (v * 0.0021).sin()
    }

    fn blocked_opts(tile: usize) -> ExecOptions {
        ExecOptions::new().policy(ExecPolicy {
            tile: Some(tile),
            ..ExecPolicy::default()
        })
    }

    /// Like [`blocked_opts`] but with an explicit depth: the operator
    /// override that pins the run to the blocked path regardless of what
    /// the cost model thinks (these test grids are all cache-resident, so
    /// the auto heuristic would otherwise reroute them to the plain loop).
    fn forced_opts(tile: usize, depth: u64) -> ExecOptions {
        ExecOptions::new().policy(ExecPolicy {
            tile: Some(tile),
            block_depth: Some(depth),
            ..ExecPolicy::default()
        })
    }

    #[test]
    fn block_depth_scales_with_tile_and_growth() {
        assert_eq!(block_depth(16, 1, 100), 8);
        assert_eq!(block_depth(16, 2, 100), 4);
        assert_eq!(block_depth(2, 3, 100), 1, "never below one iteration");
        assert_eq!(block_depth(1024, 1, 5), 5, "clamped to the run length");
        assert_eq!(block_depth(8, 0, 7), 7, "pointwise fuses everything");
        assert_eq!(block_depth(8, 1, 0), 0);
    }

    #[test]
    fn block_tiles_partition_the_grid() {
        let grid = Rect::from_extent(&Extent::new2(20, 12));
        let tiles = block_tiles(&grid, 8).unwrap();
        assert_eq!(tiles.len(), 3 * 2);
        let total: u64 = tiles.iter().map(|t| t.rect().volume()).sum();
        assert_eq!(total, grid.volume());
        for (a, ta) in tiles.iter().enumerate() {
            assert_eq!(ta.kernel(), a);
            for tb in &tiles[a + 1..] {
                assert!(ta.rect().intersect(&tb.rect()).unwrap().is_empty());
            }
            for f in ta.faces() {
                let on_edge = if f.high {
                    ta.rect().hi().coord(f.axis) == grid.hi().coord(f.axis)
                } else {
                    ta.rect().lo().coord(f.axis) == grid.lo().coord(f.axis)
                };
                match f.kind {
                    FaceKind::GridBoundary => assert!(on_edge),
                    FaceKind::RegionBoundary => assert!(!on_edge),
                    FaceKind::Shared { .. } => panic!("blocked tiles never share pipes"),
                }
            }
        }
    }

    #[test]
    fn blocked_reference_is_bit_exact_with_the_plain_loop() {
        for (p, tile, depth) in [
            (
                programs::jacobi_2d()
                    .with_extent(Extent::new2(33, 29))
                    .with_iterations(9),
                8,
                4,
            ),
            (
                programs::fdtd_2d()
                    .with_extent(Extent::new2(24, 24))
                    .with_iterations(5),
                16,
                5,
            ),
            (
                programs::jacobi_1d()
                    .with_extent(Extent::new1(64))
                    .with_iterations(10),
                8,
                4,
            ),
        ] {
            let mut expect = GridState::new(&p, init);
            run_reference(&p, &mut expect).unwrap();
            let mut got = GridState::new(&p, init);
            run_reference_opts(&p, &mut got, &forced_opts(tile, depth)).unwrap();
            assert_eq!(
                expect.max_abs_diff(&got).unwrap(),
                0.0,
                "{} tile={tile} diverged",
                p.name
            );
        }
    }

    #[test]
    fn tile_larger_than_the_grid_degenerates_to_plain_fusion() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(16, 16))
            .with_iterations(6);
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        let mut got = GridState::new(&p, init);
        run_reference_opts(&p, &mut got, &blocked_opts(1024)).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
    }

    #[test]
    fn redundant_cells_are_counted_and_bounded_by_the_total() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(8);
        let rec = Recorder::new();
        let opts = forced_opts(8, 4).trace(rec.clone());
        let mut got = GridState::new(&p, init);
        run_reference_opts(&p, &mut got, &opts).unwrap();
        let t = rec.finish();
        assert!(t.counters.redundant_cells > 0, "8x8 tiles must recompute");
        assert!(t.counters.redundant_cells < t.counters.cells_computed);
        // The non-redundant remainder is exactly the reference work:
        // every interior cell once per (iteration, statement).
        let mut plain = GridState::new(&p, init);
        let plain_rec = Recorder::new();
        crate::run_overlapped_opts(
            &p,
            &stencilcl_grid::Partition::new(
                p.extent(),
                &stencilcl_grid::Design::equal(
                    stencilcl_grid::DesignKind::Baseline,
                    1,
                    vec![1, 1],
                    vec![32, 32],
                )
                .unwrap(),
                &StencilFeatures::extract(&p).unwrap().growth,
            )
            .unwrap(),
            &mut plain,
            &ExecOptions::new().trace(plain_rec.clone()),
        )
        .unwrap();
        let baseline = plain_rec.finish();
        assert_eq!(baseline.counters.redundant_cells, 0, "one whole-grid tile");
        assert_eq!(
            t.counters.cells_computed - t.counters.redundant_cells,
            baseline.counters.cells_computed,
            "useful work is invariant under blocking"
        );
        assert_eq!(got.max_abs_diff(&plain).unwrap(), 0.0);
    }

    #[test]
    fn cache_resident_grids_auto_disable_blocking() {
        // 256^2 x 16: 1 MiB of state — the model prices the plain sweep
        // cheaper (cache-resident either way, blocking only adds the
        // trapezoid recompute), so the tile request silently reroutes to
        // the plain loop: zero redundant cells, still bit-exact.
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(256, 256))
            .with_iterations(16);
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();

        let rec = Recorder::new();
        let mut auto = GridState::new(&p, init);
        run_reference_opts(&p, &mut auto, &blocked_opts(64).trace(rec.clone())).unwrap();
        let t = rec.finish();
        assert_eq!(
            t.counters.redundant_cells, 0,
            "auto heuristic must take the plain path on a cache-resident grid"
        );
        assert_eq!(expect.max_abs_diff(&auto).unwrap(), 0.0);

        // An explicit block_depth overrides the model: same answer, but
        // the run demonstrably went through the trapezoid driver.
        let rec = Recorder::new();
        let mut forced = GridState::new(&p, init);
        run_reference_opts(&p, &mut forced, &forced_opts(64, 4).trace(rec.clone())).unwrap();
        let t = rec.finish();
        assert!(
            t.counters.redundant_cells > 0,
            "explicit depth must force the blocked path"
        );
        assert_eq!(expect.max_abs_diff(&forced).unwrap(), 0.0);
    }

    #[test]
    fn zero_tile_is_rejected() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(2);
        let mut s = GridState::uniform(&p, 0.0);
        let err = run_reference_opts(&p, &mut s, &blocked_opts(0)).unwrap_err();
        assert!(err.to_string().contains("tile size"));
    }
}
