//! Deterministic fault injection for the threaded pipe executor.
//!
//! A [`FaultPlan`] triggers faults by **kernel id × fused-block index** —
//! no randomness, no seeds: the same plan reproduces the same failure in
//! every run, which is what makes supervised-recovery tests meaningful.
//! Each injected fault fires exactly **once**: a retried attempt observes
//! the fault on first encounter and a clean pipeline afterwards, the
//! transient-fault shape [`run_supervised`](crate::run_supervised) is
//! built to absorb (inject the same trigger several times to fail several
//! consecutive attempts).
//!
//! The armed implementation is compiled only under the `fault-injection`
//! cargo feature. Without it [`FaultPlan`] is a zero-sized type whose
//! trigger check inlines to `None`, so production builds pay nothing for
//! the hooks threaded through the executor.

use std::fmt;

/// What an injected fault makes the targeted worker do at the start of the
/// triggering fused block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The worker thread panics — the watchdog must classify the silent,
    /// dead worker as [`ExecError::WorkerPanic`](crate::ExecError).
    WorkerPanic,
    /// The worker wedges silently (never reports the block) until the pool
    /// is cancelled — the executor-level shape of a stuck FIFO, classified
    /// as [`ExecError::PipeStall`](crate::ExecError).
    PipeStall,
    /// The worker delays the block by this many milliseconds before
    /// computing. Below the watchdog deadline the run must absorb the
    /// delay without any recovery; above it, the delay is indistinguishable
    /// from a stall and handled as one.
    DelayedSlab(u64),
    /// The worker corrupts the `(iteration, statement)` step tag of every
    /// slab it emits during the block, tripping the receiving kernel's
    /// pipe-protocol check.
    CorruptStepTag,
    /// The worker flips a payload bit in every slab it emits during the
    /// block *after* sealing — the step tag stays valid, so only the
    /// receiver's checksum verification
    /// ([`ExecOptions::integrity`](crate::ExecOptions)) can catch it. With
    /// integrity off this models exactly the silent data corruption the
    /// checksum layer exists to stop.
    CorruptPayload,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WorkerPanic => f.write_str("worker panic"),
            FaultKind::PipeStall => f.write_str("pipe stall"),
            FaultKind::DelayedSlab(ms) => write!(f, "delayed slab ({ms} ms)"),
            FaultKind::CorruptStepTag => f.write_str("corrupted slab step tag"),
            FaultKind::CorruptPayload => f.write_str("corrupted slab payload"),
        }
    }
}

#[cfg(feature = "fault-injection")]
mod plan {
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::FaultKind;

    /// One armed fault: a one-shot `fired` latch on its trigger.
    #[derive(Debug)]
    struct Armed {
        kernel: usize,
        block: u64,
        kind: FaultKind,
        fired: AtomicBool,
    }

    /// A deterministic schedule of executor faults (see the module docs).
    ///
    /// Built with [`FaultPlan::inject`] and handed to
    /// [`run_supervised_injected`](crate::run_supervised_injected); workers
    /// consult it at every fused-block start. Duplicate triggers are
    /// legitimate: each entry fires once, in insertion order.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        faults: Vec<Armed>,
    }

    impl FaultPlan {
        /// An empty plan: no faults ever fire.
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds a one-shot fault fired by worker `kernel` when it begins
        /// global fused block `block` (block indices count from 0 across
        /// the whole supervised run, surviving checkpointed retries).
        #[must_use]
        pub fn inject(mut self, kernel: usize, block: u64, kind: FaultKind) -> Self {
            self.faults.push(Armed {
                kernel,
                block,
                kind,
                fired: AtomicBool::new(false),
            });
            self
        }

        /// Number of injected faults.
        pub fn len(&self) -> usize {
            self.faults.len()
        }

        /// Whether the plan is empty.
        pub fn is_empty(&self) -> bool {
            self.faults.is_empty()
        }

        /// How many faults have fired so far.
        pub fn fired(&self) -> usize {
            self.faults
                .iter()
                .filter(|f| f.fired.load(Ordering::SeqCst))
                .count()
        }

        /// One-shot trigger check, called by worker `kernel` at the start
        /// of fused block `block`. At most one armed entry fires per call.
        pub(crate) fn fire(&self, kernel: usize, block: u64) -> Option<FaultKind> {
            self.faults.iter().find_map(|f| {
                (f.kernel == kernel
                    && f.block == block
                    && f.fired
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok())
                .then_some(f.kind)
            })
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
mod plan {
    use super::FaultKind;

    /// Zero-cost stand-in compiled without the `fault-injection` feature:
    /// the trigger check inlines to `None` and the whole fault path folds
    /// away.
    #[derive(Debug, Default)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// An empty plan: no faults ever fire.
        pub fn new() -> Self {
            FaultPlan
        }

        #[inline]
        pub(crate) fn fire(&self, _kernel: usize, _block: u64) -> Option<FaultKind> {
            None
        }
    }
}

pub use plan::FaultPlan;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_display() {
        assert_eq!(FaultKind::PipeStall.to_string(), "pipe stall");
        assert!(FaultKind::DelayedSlab(40).to_string().contains("40 ms"));
        assert_eq!(
            FaultKind::CorruptPayload.to_string(),
            "corrupted slab payload"
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn faults_fire_exactly_once_on_their_trigger() {
        let plan = FaultPlan::new().inject(1, 2, FaultKind::PipeStall).inject(
            1,
            2,
            FaultKind::WorkerPanic,
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fire(0, 2), None);
        assert_eq!(plan.fire(1, 0), None);
        // Duplicate triggers fire in insertion order, one per call.
        assert_eq!(plan.fire(1, 2), Some(FaultKind::PipeStall));
        assert_eq!(plan.fire(1, 2), Some(FaultKind::WorkerPanic));
        assert_eq!(plan.fire(1, 2), None);
        assert_eq!(plan.fired(), 2);
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::new();
        assert_eq!(plan.fire(0, 0), None);
        assert_eq!(plan.fire(3, 7), None);
    }
}
