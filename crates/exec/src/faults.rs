//! Deterministic fault injection for the threaded pipe executor.
//!
//! A [`FaultPlan`] triggers faults by **kernel id × fused-block index** —
//! no randomness, no seeds: the same plan reproduces the same failure in
//! every run, which is what makes supervised-recovery tests meaningful.
//! Each injected fault fires exactly **once**: a retried attempt observes
//! the fault on first encounter and a clean pipeline afterwards, the
//! transient-fault shape [`run_supervised`](crate::run_supervised) is
//! built to absorb (inject the same trigger several times to fail several
//! consecutive attempts).
//!
//! The armed implementation is compiled only under the `fault-injection`
//! cargo feature. Without it [`FaultPlan`] is a zero-sized type whose
//! trigger check inlines to `None`, so production builds pay nothing for
//! the hooks threaded through the executor.

use std::fmt;

/// What an injected fault makes the targeted worker do at the start of the
/// triggering fused block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The worker thread panics — the watchdog must classify the silent,
    /// dead worker as [`ExecError::WorkerPanic`](crate::ExecError).
    WorkerPanic,
    /// The worker wedges silently (never reports the block) until the pool
    /// is cancelled — the executor-level shape of a stuck FIFO, classified
    /// as [`ExecError::PipeStall`](crate::ExecError).
    PipeStall,
    /// The worker delays the block by this many milliseconds before
    /// computing. Below the watchdog deadline the run must absorb the
    /// delay without any recovery; above it, the delay is indistinguishable
    /// from a stall and handled as one.
    DelayedSlab(u64),
    /// The worker corrupts the `(iteration, statement)` step tag of every
    /// slab it emits during the block, tripping the receiving kernel's
    /// pipe-protocol check.
    CorruptStepTag,
    /// The worker flips a payload bit in every slab it emits during the
    /// block *after* sealing — the step tag stays valid, so only the
    /// receiver's checksum verification
    /// ([`ExecOptions::integrity`](crate::ExecOptions)) can catch it. With
    /// integrity off this models exactly the silent data corruption the
    /// checksum layer exists to stop.
    CorruptPayload,
    /// Checkpoint I/O fault: the next checkpoint generation written is torn
    /// after this many bytes (the sealed file is truncated mid-payload), so
    /// its trailing digest can never validate — the resume ladder must skip
    /// it and fall back to the previous generation.
    TornWrite(usize),
    /// Checkpoint I/O fault: the next checkpoint generation loaded is read
    /// back truncated to half its length, modeling a short `read(2)` the
    /// caller failed to retry — validation must reject it and fall back.
    ShortRead,
    /// Checkpoint I/O fault: one byte of this on-disk generation is flipped
    /// *after* its atomic rename — sealed-then-rotted media corruption that
    /// only the trailing digest can catch.
    CorruptCheckpoint(u64),
    /// Checkpoint I/O fault: the next checkpoint `fsync` fails. The write
    /// protocol must abort before the atomic rename, leaving no new
    /// generation (and every old generation intact).
    FsyncFail,
    /// Job-level fault: the pool runner that picks the job up panics
    /// before entering the supervisor. [`ExecPool`](crate::ExecPool) must
    /// catch the dead runner, respawn it, and requeue the victim job —
    /// the service-plane twin of [`FaultKind::WorkerPanic`].
    RunnerPanicAtJob,
    /// Job-level fault: the pool runner wedges for this many milliseconds
    /// before entering the supervisor, emitting no `Progress` heartbeat —
    /// the trigger shape a scheduler-side stuck-job watchdog must detect
    /// and cancel. The wedge is cancellation-aware, so a watchdog's
    /// `CancelHandle` drains it promptly.
    StallJob(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WorkerPanic => f.write_str("worker panic"),
            FaultKind::PipeStall => f.write_str("pipe stall"),
            FaultKind::DelayedSlab(ms) => write!(f, "delayed slab ({ms} ms)"),
            FaultKind::CorruptStepTag => f.write_str("corrupted slab step tag"),
            FaultKind::CorruptPayload => f.write_str("corrupted slab payload"),
            FaultKind::TornWrite(bytes) => write!(f, "torn checkpoint write ({bytes} bytes)"),
            FaultKind::ShortRead => f.write_str("short checkpoint read"),
            FaultKind::CorruptCheckpoint(generation) => {
                write!(f, "corrupted checkpoint generation {generation}")
            }
            FaultKind::FsyncFail => f.write_str("checkpoint fsync failure"),
            FaultKind::RunnerPanicAtJob => f.write_str("runner panic at job pickup"),
            FaultKind::StallJob(ms) => write!(f, "stalled job ({ms} ms silent)"),
        }
    }
}

/// Which checkpoint I/O operation is consulting the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoOp {
    /// Sealing a new generation (fires torn writes, fsync failures, and
    /// post-rename corruption).
    Write,
    /// Loading an existing generation (fires short reads).
    Read,
}

#[cfg(feature = "fault-injection")]
mod plan {
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::{FaultKind, IoOp};

    /// One armed fault: a one-shot `fired` latch on its trigger.
    #[derive(Debug)]
    struct Armed {
        kernel: usize,
        block: u64,
        kind: FaultKind,
        fired: AtomicBool,
    }

    /// One armed checkpoint I/O fault: fires on the next matching store
    /// operation ([`FaultKind::CorruptCheckpoint`] additionally keys on its
    /// generation).
    #[derive(Debug)]
    struct ArmedIo {
        kind: FaultKind,
        fired: AtomicBool,
    }

    /// One armed job-level fault: fires when a pool runner picks a job up,
    /// once, in insertion order.
    #[derive(Debug)]
    struct ArmedJob {
        kind: FaultKind,
        fired: AtomicBool,
    }

    /// A deterministic schedule of executor faults (see the module docs).
    ///
    /// Built with [`FaultPlan::inject`] and handed to
    /// [`run_supervised_injected`](crate::run_supervised_injected); workers
    /// consult it at every fused-block start. Duplicate triggers are
    /// legitimate: each entry fires once, in insertion order.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        faults: Vec<Armed>,
        io_faults: Vec<ArmedIo>,
        job_faults: Vec<ArmedJob>,
    }

    impl FaultPlan {
        /// An empty plan: no faults ever fire.
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds a one-shot fault fired by worker `kernel` when it begins
        /// global fused block `block` (block indices count from 0 across
        /// the whole supervised run, surviving checkpointed retries).
        #[must_use]
        pub fn inject(mut self, kernel: usize, block: u64, kind: FaultKind) -> Self {
            self.faults.push(Armed {
                kernel,
                block,
                kind,
                fired: AtomicBool::new(false),
            });
            self
        }

        /// Number of injected faults.
        pub fn len(&self) -> usize {
            self.faults.len()
        }

        /// Whether the plan is empty.
        pub fn is_empty(&self) -> bool {
            self.faults.is_empty()
        }

        /// How many faults have fired so far.
        pub fn fired(&self) -> usize {
            self.faults
                .iter()
                .filter(|f| f.fired.load(Ordering::SeqCst))
                .count()
        }

        /// One-shot trigger check, called by worker `kernel` at the start
        /// of fused block `block`. At most one armed entry fires per call.
        pub(crate) fn fire(&self, kernel: usize, block: u64) -> Option<FaultKind> {
            self.faults.iter().find_map(|f| {
                (f.kernel == kernel
                    && f.block == block
                    && f.fired
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok())
                .then_some(f.kind)
            })
        }

        /// Arms a one-shot checkpoint I/O fault
        /// ([`FaultKind::TornWrite`], [`FaultKind::ShortRead`],
        /// [`FaultKind::CorruptCheckpoint`], [`FaultKind::FsyncFail`]).
        /// Non-I/O kinds are rejected at arm time so a misrouted trigger
        /// cannot silently never fire.
        ///
        /// # Panics
        ///
        /// Panics when `kind` is not a checkpoint I/O fault.
        #[must_use]
        pub fn inject_io(mut self, kind: FaultKind) -> Self {
            assert!(
                matches!(
                    kind,
                    FaultKind::TornWrite(_)
                        | FaultKind::ShortRead
                        | FaultKind::CorruptCheckpoint(_)
                        | FaultKind::FsyncFail
                ),
                "inject_io takes checkpoint I/O fault kinds, got {kind:?}"
            );
            self.io_faults.push(ArmedIo {
                kind,
                fired: AtomicBool::new(false),
            });
            self
        }

        /// How many checkpoint I/O faults have fired so far.
        pub fn io_fired(&self) -> usize {
            self.io_faults
                .iter()
                .filter(|f| f.fired.load(Ordering::SeqCst))
                .count()
        }

        /// Arms a one-shot job-level fault ([`FaultKind::RunnerPanicAtJob`],
        /// [`FaultKind::StallJob`]), fired by the pool runner that picks the
        /// next job up. Non-job kinds are rejected at arm time so a
        /// misrouted trigger cannot silently never fire.
        ///
        /// # Panics
        ///
        /// Panics when `kind` is not a job-level fault.
        #[must_use]
        pub fn inject_job(mut self, kind: FaultKind) -> Self {
            assert!(
                matches!(kind, FaultKind::RunnerPanicAtJob | FaultKind::StallJob(_)),
                "inject_job takes job-level fault kinds, got {kind:?}"
            );
            self.job_faults.push(ArmedJob {
                kind,
                fired: AtomicBool::new(false),
            });
            self
        }

        /// How many job-level faults have fired so far.
        pub fn job_fired(&self) -> usize {
            self.job_faults
                .iter()
                .filter(|f| f.fired.load(Ordering::SeqCst))
                .count()
        }

        /// One-shot trigger check at job pickup. At most one armed entry
        /// fires per call, in insertion order.
        pub(crate) fn fire_job(&self) -> Option<FaultKind> {
            self.job_faults.iter().find_map(|f| {
                f.fired
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                    .then_some(f.kind)
            })
        }

        /// One-shot trigger check for checkpoint I/O: `op` is what the
        /// store is doing and `generation` the generation it touches. At
        /// most one armed entry fires per call, in insertion order.
        pub(crate) fn fire_io(&self, op: IoOp, generation: u64) -> Option<FaultKind> {
            self.io_faults.iter().find_map(|f| {
                let matches_op = match (op, f.kind) {
                    (IoOp::Write, FaultKind::TornWrite(_) | FaultKind::FsyncFail) => true,
                    (IoOp::Write, FaultKind::CorruptCheckpoint(g)) => g == generation,
                    (IoOp::Read, FaultKind::ShortRead) => true,
                    _ => false,
                };
                (matches_op
                    && f.fired
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok())
                .then_some(f.kind)
            })
        }
    }
}

#[cfg(not(feature = "fault-injection"))]
mod plan {
    use super::{FaultKind, IoOp};

    /// Zero-cost stand-in compiled without the `fault-injection` feature:
    /// the trigger check inlines to `None` and the whole fault path folds
    /// away.
    #[derive(Debug, Default)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// An empty plan: no faults ever fire.
        pub fn new() -> Self {
            FaultPlan
        }

        #[inline]
        pub(crate) fn fire(&self, _kernel: usize, _block: u64) -> Option<FaultKind> {
            None
        }

        #[inline]
        pub(crate) fn fire_io(&self, _op: IoOp, _generation: u64) -> Option<FaultKind> {
            None
        }

        #[inline]
        pub(crate) fn fire_job(&self) -> Option<FaultKind> {
            None
        }
    }
}

pub use plan::FaultPlan;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_display() {
        assert_eq!(FaultKind::PipeStall.to_string(), "pipe stall");
        assert!(FaultKind::DelayedSlab(40).to_string().contains("40 ms"));
        assert_eq!(
            FaultKind::CorruptPayload.to_string(),
            "corrupted slab payload"
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn faults_fire_exactly_once_on_their_trigger() {
        let plan = FaultPlan::new().inject(1, 2, FaultKind::PipeStall).inject(
            1,
            2,
            FaultKind::WorkerPanic,
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fire(0, 2), None);
        assert_eq!(plan.fire(1, 0), None);
        // Duplicate triggers fire in insertion order, one per call.
        assert_eq!(plan.fire(1, 2), Some(FaultKind::PipeStall));
        assert_eq!(plan.fire(1, 2), Some(FaultKind::WorkerPanic));
        assert_eq!(plan.fire(1, 2), None);
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn io_fault_kinds_display() {
        assert!(FaultKind::TornWrite(128).to_string().contains("128 bytes"));
        assert_eq!(FaultKind::ShortRead.to_string(), "short checkpoint read");
        assert!(FaultKind::CorruptCheckpoint(5)
            .to_string()
            .contains("generation 5"));
        assert!(FaultKind::FsyncFail.to_string().contains("fsync"));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn io_faults_fire_once_on_their_matching_operation() {
        let plan = FaultPlan::new()
            .inject_io(FaultKind::FsyncFail)
            .inject_io(FaultKind::CorruptCheckpoint(2))
            .inject_io(FaultKind::ShortRead);
        // Reads never trip write-side faults and vice versa.
        assert_eq!(plan.fire_io(IoOp::Read, 0), Some(FaultKind::ShortRead));
        assert_eq!(plan.fire_io(IoOp::Read, 1), None);
        // Generation-keyed corruption waits for its generation.
        assert_eq!(plan.fire_io(IoOp::Write, 1), Some(FaultKind::FsyncFail));
        assert_eq!(plan.fire_io(IoOp::Write, 1), None);
        assert_eq!(
            plan.fire_io(IoOp::Write, 2),
            Some(FaultKind::CorruptCheckpoint(2))
        );
        assert_eq!(plan.io_fired(), 3);
        // Block-trigger accounting is untouched.
        assert_eq!(plan.fired(), 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    #[should_panic(expected = "checkpoint I/O fault")]
    fn non_io_kinds_are_rejected_at_arm_time() {
        let _ = FaultPlan::new().inject_io(FaultKind::WorkerPanic);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn job_faults_fire_once_in_insertion_order() {
        let plan = FaultPlan::new()
            .inject_job(FaultKind::StallJob(50))
            .inject_job(FaultKind::RunnerPanicAtJob);
        assert_eq!(plan.fire_job(), Some(FaultKind::StallJob(50)));
        assert_eq!(plan.fire_job(), Some(FaultKind::RunnerPanicAtJob));
        assert_eq!(plan.fire_job(), None);
        assert_eq!(plan.job_fired(), 2);
        // Block and I/O accounting are untouched.
        assert_eq!(plan.fired(), 0);
        assert_eq!(plan.io_fired(), 0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    #[should_panic(expected = "job-level fault")]
    fn non_job_kinds_are_rejected_at_arm_time() {
        let _ = FaultPlan::new().inject_job(FaultKind::FsyncFail);
    }

    #[test]
    fn job_fault_kinds_display() {
        assert!(FaultKind::RunnerPanicAtJob.to_string().contains("runner"));
        assert!(FaultKind::StallJob(75).to_string().contains("75 ms"));
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::new();
        assert_eq!(plan.fire(0, 0), None);
        assert_eq!(plan.fire(3, 7), None);
        assert_eq!(plan.fire_io(IoOp::Write, 0), None);
        assert_eq!(plan.fire_io(IoOp::Read, 0), None);
        assert_eq!(plan.fire_job(), None);
    }
}
