use stencilcl_grid::{Cone, DesignKind, Growth, Rect, TileInfo, MAX_DIM};
use stencilcl_lang::StencilFeatures;

use crate::ExecError;

/// Precomputed update domains for one tile across a fused pass.
///
/// Iteration fusion turns a tile into a trapezoid of work: the footprint a
/// kernel may validly update shrinks every chained statement and every fused
/// iteration on each face where data is *consumed* rather than exchanged
/// (expanding faces), while on pipe-shared and grid-boundary faces the domain
/// reaches the tile edge throughout.
///
/// For iteration `i` (1-based) and statement `s` (0-based) the valid domain
/// is the cone's base shrunk on expanding faces by
/// `(i−1) · G_total + G_cum(s)`, where `G_cum` accumulates the statement
/// growths within one iteration, intersected with the statement's global
/// update domain (which handles the fixed grid-boundary ring).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainPlan {
    cone: Cone,
    buffer: Rect,
    total: Growth,
    cumulative: Vec<Growth>,
    global_domains: Vec<Rect>,
    fused: u64,
}

impl DomainPlan {
    /// Builds the plan for `tile` under design `kind` with `fused` on-chip
    /// iterations of the stencil described by `features` over `grid_rect`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if statement growths cannot be combined (they
    /// always can for a checked program).
    pub fn new(
        features: &StencilFeatures,
        tile: &TileInfo,
        kind: DesignKind,
        fused: u64,
        grid_rect: &Rect,
    ) -> Result<DomainPlan, ExecError> {
        let total = features.growth;
        let cone = tile.cone(kind, total, fused);
        let mut cumulative = Vec::with_capacity(features.statements.len());
        let mut acc = Growth::zero(features.dim);
        for s in &features.statements {
            acc = acc.checked_add(&s.growth)?;
            cumulative.push(acc);
        }
        let global_domains = features
            .statements
            .iter()
            .map(|s| {
                let (mut lo, mut hi) = s.growth.amounts(1);
                for v in lo.iter_mut().chain(hi.iter_mut()) {
                    *v = -*v;
                }
                grid_rect.expand(&lo, &hi)
            })
            .collect();
        // Buffer: the cone's input footprint, plus a one-iteration halo on
        // pipe-shared faces, clipped to the grid.
        let mut halo_lo = [0i64; MAX_DIM];
        let mut halo_hi = [0i64; MAX_DIM];
        if kind.uses_pipes() {
            for f in tile.faces() {
                if matches!(f.kind, stencilcl_grid::FaceKind::Shared { .. }) {
                    if f.high {
                        halo_hi[f.axis] = total.hi(f.axis) as i64;
                    } else {
                        halo_lo[f.axis] = total.lo(f.axis) as i64;
                    }
                }
            }
        }
        let buffer = cone
            .input_footprint()
            .expand(&halo_lo, &halo_hi)
            .intersect(grid_rect)?;
        Ok(DomainPlan {
            cone,
            buffer,
            total,
            cumulative,
            global_domains,
            fused,
        })
    }

    /// The local buffer footprint (burst-read window), clipped to the grid.
    pub fn buffer(&self) -> Rect {
        self.buffer
    }

    /// The tile (output footprint).
    pub fn tile(&self) -> Rect {
        self.cone.tile()
    }

    /// The valid update domain of statement `s` at fused iteration `i`
    /// (1-based), in absolute coordinates, clipped to the statement's global
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `1..=fused` or `s` is out of range.
    pub fn domain(&self, i: u64, s: usize) -> Rect {
        assert!(
            i >= 1 && i <= self.fused,
            "iteration {i} outside 1..={}",
            self.fused
        );
        let cum = &self.cumulative[s];
        let mut lo = [0i64; MAX_DIM];
        let mut hi = [0i64; MAX_DIM];
        for d in 0..self.tile().dim() {
            if self.cone.expands_lo(d) {
                lo[d] = -(((i - 1) * self.total.lo(d) + cum.lo(d)) as i64);
            }
            if self.cone.expands_hi(d) {
                hi[d] = -(((i - 1) * self.total.hi(d) + cum.hi(d)) as i64);
            }
        }
        self.cone
            .level(0)
            .expand(&lo, &hi)
            .intersect(&self.global_domains[s])
            .expect("plan geometry shares one dimensionality")
    }

    /// The absolute halo region of this tile's buffer across the given face:
    /// the part of the buffer beyond the tile along `axis` on the `high`
    /// side. This is what a pipe neighbor refills after each statement.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn halo_rect(&self, axis: usize, high: bool) -> Rect {
        let tile = self.tile();
        let (mut lo, mut hi) = (self.buffer.lo(), self.buffer.hi());
        if high {
            lo = lo.with_coord(axis, tile.hi().coord(axis));
        } else {
            hi = hi.with_coord(axis, tile.lo().coord(axis));
        }
        Rect::new(lo, hi).expect("buffer and tile share one dimensionality")
    }
}

/// Rejects stencils whose statements read diagonal offsets (pipe executors
/// exchange face slabs only; see the crate-level limitations).
///
/// # Errors
///
/// Returns [`ExecError::DiagonalAccess`] naming the first offending
/// statement.
pub fn reject_diagonals(features: &StencilFeatures) -> Result<(), ExecError> {
    for s in &features.statements {
        for (_, offset) in &s.accesses {
            let nonzero = (0..offset.dim()).filter(|&d| offset.coord(d) != 0).count();
            if nonzero > 1 {
                return Err(ExecError::DiagonalAccess {
                    statement: s.target.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Design, Extent, Partition};
    use stencilcl_lang::programs;

    fn plan(kind: DesignKind, fused: u64) -> (StencilFeatures, Vec<DomainPlan>) {
        let program = programs::jacobi_2d().with_extent(Extent::new2(64, 64));
        let f = StencilFeatures::extract(&program).unwrap();
        let d = Design::equal(kind, fused, vec![2, 2], vec![16, 16]).unwrap();
        let p = Partition::new(f.extent, &d, &f.growth).unwrap();
        let grid_rect = Rect::from_extent(&f.extent);
        let plans = p
            .tiles_for_region(&[1, 1])
            .iter()
            .map(|t| DomainPlan::new(&f, t, kind, fused, &grid_rect).unwrap())
            .collect();
        (f, plans)
    }

    #[test]
    fn final_domain_is_the_tile() {
        // Kernel 0 of region [1,1] lies strictly inside the grid, so the
        // trapezoid must close exactly on the tile at the last iteration.
        let (_, plans) = plan(DesignKind::Baseline, 3);
        assert_eq!(plans[0].domain(3, 0), plans[0].tile());
    }

    #[test]
    fn first_domain_spans_the_cone_base_interior() {
        let (_, plans) = plan(DesignKind::Baseline, 3);
        let dp = &plans[0]; // interior region: all faces expand
        let d = dp.domain(1, 0);
        // Base expands 3 on every side; after one statement the domain has
        // shrunk 1 on every side.
        assert_eq!(d, dp.tile().expand_uniform(2));
    }

    #[test]
    fn pipe_domains_reach_shared_tile_edges() {
        let (_, plans) = plan(DesignKind::PipeShared, 3);
        // Kernel 0 of region [1,1]: lo faces are region boundary? No — all
        // region faces of region [1,1] are interior, so outward faces are
        // RegionBoundary; kernel 0's lo faces expand, hi faces are shared.
        let dp = &plans[0];
        let d = dp.domain(2, 0);
        assert_eq!(d.hi(), dp.tile().hi(), "shared faces never shrink");
        assert!(
            d.lo().coord(0) < dp.tile().lo().coord(0),
            "outward halo still valid"
        );
    }

    #[test]
    fn buffer_includes_shared_halo_only_for_pipes() {
        let (_, base) = plan(DesignKind::Baseline, 2);
        let (_, pipe) = plan(DesignKind::PipeShared, 2);
        // Baseline kernel 0 buffer: tile + 2 on all sides.
        assert_eq!(base[0].buffer(), base[0].tile().expand_uniform(2));
        // Pipe kernel 0: 2*1 outward on lo sides (region boundary), 1 on
        // shared hi sides.
        let expected = pipe[0].tile().expand(&[2, 2, 0], &[1, 1, 0]);
        assert_eq!(pipe[0].buffer(), expected);
    }

    #[test]
    fn halo_rect_sits_beyond_tile() {
        let (_, pipe) = plan(DesignKind::PipeShared, 2);
        let dp = &pipe[0];
        let halo = dp.halo_rect(0, true);
        assert_eq!(halo.lo().coord(0), dp.tile().hi().coord(0));
        assert_eq!(halo.hi().coord(0), dp.buffer().hi().coord(0));
        assert_eq!(halo.volume(), dp.buffer().len(1));
    }

    #[test]
    fn grid_boundary_clips_domains() {
        let program = programs::jacobi_2d().with_extent(Extent::new2(32, 32));
        let f = StencilFeatures::extract(&program).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2, 2], vec![16, 16]).unwrap();
        let p = Partition::new(f.extent, &d, &f.growth).unwrap();
        let grid_rect = Rect::from_extent(&f.extent);
        let tiles = p.tiles_for_region(&[0, 0]);
        let dp = DomainPlan::new(&f, &tiles[0], DesignKind::Baseline, 2, &grid_rect).unwrap();
        // Kernel (0,0): grid boundary on lo sides, so the domain starts at 1
        // (the statement interior), not below 0.
        let d1 = dp.domain(1, 0);
        assert_eq!(d1.lo().coord(0), 1);
        assert_eq!(d1.lo().coord(1), 1);
    }

    #[test]
    fn diagonal_detection() {
        let ok = StencilFeatures::extract(&programs::fdtd_2d()).unwrap();
        assert!(reject_diagonals(&ok).is_ok());
        let diag = stencilcl_lang::parse(
            "stencil d { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[i-1][j-1]; }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&diag).unwrap();
        assert!(matches!(
            reject_diagonals(&f).unwrap_err(),
            ExecError::DiagonalAccess { .. }
        ));
    }
}
