//! Durable checkpoints: crash-safe persistence of supervised runs and
//! process-level resume.
//!
//! The supervisor's in-memory recovery ladder (checkpointed retry, then
//! sequential degradation) survives *thread* failures but not *process*
//! failures — a SIGKILL, OOM kill, or power loss discards every fused-block
//! barrier the run had reached. This module extends the same checkpoint
//! discipline to disk:
//!
//! - At every k-th fused-block barrier (`CheckpointPolicy::every_barriers`,
//!   or on a wall-clock cadence via `every_wall`), the worker pool's
//!   consistent grid buffer is serialized into a **generation** — one file,
//!   written temp-file → fdatasync → atomic rename, so a crash at any
//!   instant leaves either the previous generations or the previous
//!   generations *plus* one new sealed file, never a half-written newest
//!   generation masquerading as valid. The barrier itself pays only a
//!   grid-state clone + enqueue: serialization, digesting, and the disk
//!   I/O all run on a dedicated seal thread that is joined before the run
//!   returns, keeping the durability contract while taking the entire
//!   sealing cost off the compute path.
//! - Every generation is sealed with the run's word-wise FNV-1a-64 digest
//!   (the same primitive that seals boundary slabs) over the entire file,
//!   and carries a JSON [`CheckpointManifest`] embedding the program itself,
//!   its iterations-normalized hash, the iteration cursor, the fused-block
//!   sequence base, the remaining wall-clock deadline budget, and a
//!   telemetry counter snapshot.
//! - [`resume_supervised`] walks the generations newest → oldest: a
//!   generation that fails digest or decode validation is skipped with a
//!   diagnostic and the next-older one is tried; an *intact* manifest whose
//!   program hash does not match the resuming program is a permanent
//!   [`ExecError::CheckpointMismatch`] — the store belongs to a different
//!   run and no amount of fallback makes it compatible.
//!
//! Resume is bit-exact: the grid bytes are stored as `f64` bit patterns,
//! and the resumed run re-enters the supervisor at the recorded iteration
//! cursor with the recorded fused-block base, so fault triggers, slab
//! sequence numbers, and the computed values all continue exactly as an
//! uninterrupted run would have produced them.
//!
//! Crash-consistency faults (torn writes, short reads, post-seal
//! corruption, fsync failures) are injectable through the crate's
//! [`FaultPlan`](crate::FaultPlan) under the `fault-injection` feature —
//! see `tests/chaos.rs` for the negative paths.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use stencilcl_grid::{Grid, Partition};
use stencilcl_lang::{GridState, Program};
use stencilcl_telemetry::{Counter, CounterSnapshot, EnvConfig, Recorder, TracePhase, TraceSink};

use crate::error::ExecError;
use crate::faults::{FaultKind, FaultPlan, IoOp};
use crate::integrity::fnv1a_bytes;
use crate::options::ExecOptions;
use crate::supervise::{dispatch_with, globalize, ExecPolicy, RecoveryPath, ResumeBase, RunReport};

/// File magic of a checkpoint generation.
const MAGIC: &[u8; 8] = b"STCLCKPT";
/// On-disk format version; bumped on any layout change so older readers
/// reject newer files with a diagnostic instead of misparsing them.
const VERSION: u32 = 1;

/// When and where [`run_supervised_full`](crate::run_supervised_full)
/// persists durable checkpoints. Disabled by default (`dir: None`) — the
/// hot path pays nothing until a directory is configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Seal a generation every this many fused-block barriers (≥ 1).
    pub every_barriers: u64,
    /// Additionally seal a generation whenever this much wall time has
    /// passed since the last one, even mid-stride. `None` disables the
    /// wall-clock cadence.
    pub every_wall: Option<Duration>,
    /// Whether a successful run seals one last generation at completion.
    /// Callers that record completion elsewhere (the service journals the
    /// terminal digest) can turn this off so short jobs whose cadence
    /// never fired pay no seal at all.
    pub final_seal: bool,
    /// Newest generations kept on disk; older ones are pruned after each
    /// successful seal (≥ 1). More generations deepen the corruption
    /// fallback ladder at the cost of disk.
    pub keep_generations: usize,
    /// Checkpoint directory. `None` disables persistence entirely.
    pub dir: Option<PathBuf>,
    /// Optional design summary sealed into each manifest so `stencilcl
    /// resume` can rebuild the partition without re-deriving flags. Library
    /// callers that manage their own partitions may leave it `None`.
    pub design: Option<DesignSpec>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_barriers: 1,
            every_wall: None,
            final_seal: true,
            keep_generations: 3,
            dir: None,
            design: None,
        }
    }
}

impl CheckpointPolicy {
    /// Persistence into `dir` with the default cadence (every barrier,
    /// three generations kept).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: Some(dir.into()),
            ..CheckpointPolicy::default()
        }
    }

    /// Sets the barrier stride (clamped to ≥ 1 at use time).
    #[must_use]
    pub fn every_barriers(mut self, n: u64) -> Self {
        self.every_barriers = n;
        self
    }

    /// Sets the wall-clock cadence.
    #[must_use]
    pub fn every_wall(mut self, d: Duration) -> Self {
        self.every_wall = Some(d);
        self
    }

    /// Sets how many newest generations survive pruning.
    #[must_use]
    pub fn keep_generations(mut self, n: usize) -> Self {
        self.keep_generations = n;
        self
    }

    /// Disables the completion-time seal (see [`CheckpointPolicy::final_seal`]).
    #[must_use]
    pub fn no_final_seal(mut self) -> Self {
        self.final_seal = false;
        self
    }

    /// Seals `design` into every manifest this policy writes.
    #[must_use]
    pub fn design(mut self, design: DesignSpec) -> Self {
        self.design = Some(design);
        self
    }

    /// Whether persistence is armed.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Defaults overridden by an explicit [`EnvConfig`] snapshot
    /// (`STENCILCL_CKPT_DIR`, `STENCILCL_CKPT_EVERY`) — the injectable seam
    /// behind [`ExecOptions::from_env`](crate::ExecOptions::from_env);
    /// CLI flags layered on top always beat the frozen env.
    pub fn from_config(cfg: &EnvConfig) -> Self {
        let mut policy = CheckpointPolicy::default();
        if let Some(dir) = &cfg.ckpt_dir {
            policy.dir = Some(dir.clone());
        }
        if let Some(n) = cfg.ckpt_every {
            policy.every_barriers = n;
        }
        policy
    }
}

/// Design summary a manifest carries so the CLI can rebuild the same
/// partition at resume time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Design kind name as the CLI spells it (e.g. `pipe-shared`).
    pub kind: String,
    /// Fused iterations per block.
    pub fused: u64,
    /// Kernel parallelism per axis.
    pub parallelism: Vec<usize>,
    /// Tile edge per axis.
    pub tile: Vec<usize>,
}

/// Per-grid payload bookkeeping inside a manifest: payload grids are stored
/// in manifest order, each exactly `cells` 8-byte little-endian `f64` bit
/// patterns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridMeta {
    /// Grid name, matching a declaration of the embedded program.
    pub name: String,
    /// Cell count (the declared extent's volume).
    pub cells: u64,
}

/// The JSON header sealed into every checkpoint generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Monotonic generation number within the store.
    pub generation: u64,
    /// Iterations-normalized FNV-1a-64 hash of `program` — the hard resume
    /// gate: a resuming program with a different hash can never use this
    /// store ([`program_hash`]).
    pub program_hash: u64,
    /// Fingerprint of the writing run's [`ExecPolicy`] (deadline excluded);
    /// diagnostic only — resume under a different policy is legal.
    pub policy_fingerprint: u64,
    /// The program itself, so resume needs no source file.
    pub program: Program,
    /// Design summary for partition reconstruction (CLI runs).
    pub design: Option<DesignSpec>,
    /// The writing run's iteration target (informational; the resume target
    /// is the resuming program's own count).
    pub total_iterations: u64,
    /// Iterations fully completed and contained in this generation's grids.
    pub completed_iterations: u64,
    /// Global fused-block sequence base for the resumed run, so slab
    /// sequence numbers and fault triggers continue instead of restarting.
    pub blocks_done: u64,
    /// The original run's total wall-clock budget in milliseconds, if any.
    pub deadline_total_ms: Option<u64>,
    /// Budget still unspent when this generation was sealed. `Some(0)`
    /// means the original absolute cutoff has already passed: resume must
    /// fail with `DeadlineExceeded` instead of granting new time.
    pub deadline_remaining_ms: Option<u64>,
    /// Payload layout, in storage order.
    pub grids: Vec<GridMeta>,
    /// Telemetry counters accumulated up to the seal point.
    pub counters: CounterSnapshot,
}

/// Iterations-normalized program hash: the FNV-1a-64 digest of the
/// program's canonical JSON with the iteration count zeroed out. Two runs
/// of the same stencil toward different iteration targets share a hash, so
/// a checkpoint written mid-run resumes cleanly toward any target; any
/// change to grids, extents, parameters, or update statements changes it.
pub fn program_hash(program: &Program) -> u64 {
    let canon = program.with_iterations(0);
    let json = serde_json::to_string(&canon).expect("program serialization is infallible");
    fnv1a_bytes(json.as_bytes())
}

/// Fingerprint of the retry/watchdog shape of a policy. Excludes the
/// deadline (persisted separately as an absolute budget) and the jitter
/// seed (noise, not semantics). Recorded for diagnostics only.
pub fn policy_fingerprint(policy: &ExecPolicy) -> u64 {
    let repr = format!(
        "{:?}|{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}",
        policy.watchdog,
        policy.drain,
        policy.teardown_grace,
        policy.max_retries,
        policy.backoff_base,
        policy.backoff_max,
        policy.sequential_fallback,
        policy.tile,
    );
    fnv1a_bytes(repr.as_bytes())
}

/// Serializes one consistent barrier state into the on-disk generation
/// layout: magic, version, manifest length + JSON, grid payloads in
/// manifest order as `f64` bit patterns, and the trailing FNV-1a-64 digest
/// over everything before it.
#[cfg(test)]
fn encode_checkpoint(manifest: &CheckpointManifest, state: &GridState) -> Result<Vec<u8>, String> {
    let json = serde_json::to_string(manifest).map_err(|e| format!("manifest encoding: {e}"))?;
    encode_with_json(manifest, &json, state)
}

/// `encode_checkpoint` with the manifest JSON already serialized — the
/// writer prices the sealed size on the compute path (the JSON is tiny) and
/// hands both to the seal thread so nothing is serialized twice.
fn encode_with_json(
    manifest: &CheckpointManifest,
    json: &str,
    state: &GridState,
) -> Result<Vec<u8>, String> {
    let payload_cells: u64 = manifest.grids.iter().map(|g| g.cells).sum();
    let mut buf =
        Vec::with_capacity(16 + json.len() + usize::try_from(payload_cells * 8).unwrap_or(0) + 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let len = u32::try_from(json.len()).map_err(|_| "manifest larger than 4 GiB".to_string())?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(json.as_bytes());
    for meta in &manifest.grids {
        let grid = state
            .grid(&meta.name)
            .map_err(|e| format!("grid `{}` absent from state: {e}", meta.name))?;
        for v in grid.as_slice() {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let digest = fnv1a_bytes(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    Ok(buf)
}

/// Validates and decodes one generation. Errors are human-readable reasons
/// for the fallback ladder, not `ExecError`s — a single bad generation is
/// not yet a failed resume.
fn decode_checkpoint(
    bytes: &[u8],
) -> Result<(CheckpointManifest, BTreeMap<String, Grid<f64>>), String> {
    let digest_at = bytes
        .len()
        .checked_sub(8)
        .ok_or_else(|| format!("file is {} byte(s), shorter than its digest", bytes.len()))?;
    let sealed = u64::from_le_bytes(bytes[digest_at..].try_into().expect("8-byte digest"));
    let computed = fnv1a_bytes(&bytes[..digest_at]);
    if sealed != computed {
        return Err(format!(
            "digest mismatch: sealed {sealed:#018x}, computed {computed:#018x}"
        ));
    }
    let body = &bytes[..digest_at];
    if body.len() < 16 {
        return Err("header truncated".to_string());
    }
    if &body[..8] != MAGIC {
        return Err("bad magic (not a stencilcl checkpoint)".to_string());
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4-byte version"));
    if version != VERSION {
        return Err(format!(
            "unsupported format version {version} (this build reads {VERSION})"
        ));
    }
    let manifest_len = u32::from_le_bytes(body[12..16].try_into().expect("4-byte length")) as usize;
    let rest = &body[16..];
    if rest.len() < manifest_len {
        return Err("manifest truncated".to_string());
    }
    let text = std::str::from_utf8(&rest[..manifest_len])
        .map_err(|e| format!("manifest is not UTF-8: {e}"))?;
    let manifest: CheckpointManifest =
        serde_json::from_str(text).map_err(|e| format!("manifest parse: {e}"))?;
    let mut payload = &rest[manifest_len..];
    let mut grids = BTreeMap::new();
    for meta in &manifest.grids {
        let decl = manifest
            .program
            .grids
            .iter()
            .find(|d| d.name == meta.name)
            .ok_or_else(|| format!("payload grid `{}` missing from its own program", meta.name))?;
        if decl.extent.volume() != meta.cells {
            return Err(format!(
                "grid `{}` declares {} cell(s) but its extent holds {}",
                meta.name,
                meta.cells,
                decl.extent.volume()
            ));
        }
        let cells = usize::try_from(meta.cells).map_err(|_| "payload overflow".to_string())?;
        let nbytes = cells
            .checked_mul(8)
            .ok_or_else(|| "payload overflow".to_string())?;
        if payload.len() < nbytes {
            return Err(format!(
                "payload truncated inside grid `{}`: {} of {} byte(s) present",
                meta.name,
                payload.len(),
                nbytes
            ));
        }
        let mut data = Vec::with_capacity(cells);
        for chunk in payload[..nbytes].chunks_exact(8) {
            data.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("8-byte cell"),
            )));
        }
        let grid = Grid::from_vec(decl.extent, data)
            .map_err(|e| format!("grid `{}` reconstruction: {e}", meta.name))?;
        grids.insert(meta.name.clone(), grid);
        payload = &payload[nbytes..];
    }
    if !payload.is_empty() {
        return Err(format!("{} trailing byte(s) after payload", payload.len()));
    }
    Ok((manifest, grids))
}

/// Where checkpoint generations live. [`DirStore`] is the production
/// filesystem implementation; tests substitute in-memory or misbehaving
/// stores to exercise the fallback ladder.
pub trait CheckpointStore {
    /// Durably stores `bytes` as generation `generation`. Must be atomic:
    /// after an error, either the full generation exists or none of it.
    fn save(&self, generation: u64, bytes: &[u8]) -> io::Result<()>;
    /// Reads back one generation.
    fn load(&self, generation: u64) -> io::Result<Vec<u8>>;
    /// All stored generation numbers, ascending. An empty store is `Ok`.
    fn generations(&self) -> io::Result<Vec<u64>>;
    /// Deletes one generation (pruning).
    fn remove(&self, generation: u64) -> io::Result<()>;
}

/// Filesystem checkpoint store: one `ckpt-<generation>.stckpt` file per
/// generation inside a directory, written temp-file → fsync → atomic
/// rename. Injected I/O faults (`fault-injection` feature) are applied
/// here, at the storage boundary, exactly where real hardware lies.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
    faults: Arc<FaultPlan>,
}

impl DirStore {
    /// A store over `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirStore::with_faults(dir, Arc::new(FaultPlan::new()))
    }

    pub(crate) fn with_faults(dir: impl Into<PathBuf>, faults: Arc<FaultPlan>) -> Self {
        DirStore {
            dir: dir.into(),
            faults,
        }
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.stckpt"))
    }
}

/// Parses `ckpt-<generation>.stckpt` back into its generation number.
fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".stckpt")?
        .parse()
        .ok()
}

impl CheckpointStore for DirStore {
    fn save(&self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let fault = self.faults.fire_io(IoOp::Write, generation);
        if matches!(fault, Some(FaultKind::FsyncFail)) {
            // Model a failed fsync as a failed save: the temp file never
            // reaches the rename, so no generation appears at all.
            return Err(io::Error::other("injected checkpoint fsync failure"));
        }
        let written: &[u8] = match fault {
            // A torn write models a device that acknowledged durability it
            // did not deliver: the generation *is* sealed (renamed into
            // place) but its tail is gone, so only the digest catches it.
            Some(FaultKind::TornWrite(n)) => &bytes[..n.min(bytes.len())],
            _ => bytes,
        };
        let tmp = self.dir.join(format!(".ckpt-{generation:08}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        file.write_all(written)?;
        // fdatasync, not fsync: the payload and its size must be durable
        // before the rename publishes the generation, but the inode's
        // timestamp metadata need not be — on journaling filesystems that
        // halves the seal latency.
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, self.generation_path(generation))?;
        // Make the rename itself durable; best-effort — some filesystems
        // refuse to fsync directories.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if matches!(fault, Some(FaultKind::CorruptCheckpoint(_))) {
            // Bit-rot after the seal: flip one payload byte in place.
            let path = self.generation_path(generation);
            let mut data = fs::read(&path)?;
            let mid = data.len() / 2;
            data[mid] ^= 0x40;
            fs::write(&path, data)?;
        }
        Ok(())
    }

    fn load(&self, generation: u64) -> io::Result<Vec<u8>> {
        let bytes = fs::read(self.generation_path(generation))?;
        Ok(match self.faults.fire_io(IoOp::Read, generation) {
            Some(FaultKind::ShortRead) => bytes[..bytes.len() / 2].to_vec(),
            _ => bytes,
        })
    }

    fn generations(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(g) = entry.file_name().to_str().and_then(parse_generation) {
                out.push(g);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn remove(&self, generation: u64) -> io::Result<()> {
        fs::remove_file(self.generation_path(generation))
    }
}

/// One successfully validated checkpoint, plus the diagnostics of any newer
/// generations the fallback ladder skipped to reach it.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The sealed manifest.
    pub manifest: CheckpointManifest,
    /// The reconstructed grid contents, bit-exact.
    pub grids: BTreeMap<String, Grid<f64>>,
    /// One line per newer generation that failed validation.
    pub fallback_notes: Vec<String>,
}

/// Walks the store's generations newest → oldest and returns the first one
/// that validates. Corrupt or unreadable generations are skipped with a
/// note; an **intact** manifest whose program hash differs from
/// `expected_program_hash` fails immediately — the store belongs to a
/// different program, and older generations of the wrong program are not a
/// fallback.
///
/// # Errors
///
/// [`ExecError::CheckpointMismatch`] when the store is empty, unlistable,
/// hash-incompatible, or every generation fails validation; the detail
/// string carries the per-generation diagnostics.
pub fn load_latest(
    store: &dyn CheckpointStore,
    expected_program_hash: Option<u64>,
) -> Result<LoadedCheckpoint, ExecError> {
    let generations = store
        .generations()
        .map_err(|e| ExecError::CheckpointMismatch {
            detail: format!("cannot list checkpoint store: {e}"),
        })?;
    if generations.is_empty() {
        return Err(ExecError::CheckpointMismatch {
            detail: "store holds no checkpoint generations".to_string(),
        });
    }
    let mut notes = Vec::new();
    for &generation in generations.iter().rev() {
        let bytes = match store.load(generation) {
            Ok(b) => b,
            Err(e) => {
                notes.push(format!("generation {generation}: read failed: {e}"));
                continue;
            }
        };
        match decode_checkpoint(&bytes) {
            Ok((manifest, grids)) => {
                if let Some(expected) = expected_program_hash {
                    if manifest.program_hash != expected {
                        return Err(ExecError::CheckpointMismatch {
                            detail: format!(
                                "generation {generation} was sealed for program hash \
                                 {:#018x}, but the resuming program hashes to {expected:#018x}",
                                manifest.program_hash
                            ),
                        });
                    }
                }
                if manifest.generation != generation {
                    notes.push(format!(
                        "generation {generation}: manifest claims generation {} \
                         (misplaced file)",
                        manifest.generation
                    ));
                    continue;
                }
                return Ok(LoadedCheckpoint {
                    manifest,
                    grids,
                    fallback_notes: notes,
                });
            }
            Err(reason) => notes.push(format!("generation {generation}: {reason}")),
        }
    }
    Err(ExecError::CheckpointMismatch {
        detail: format!(
            "all {} generation(s) failed validation: {}",
            generations.len(),
            notes.join("; ")
        ),
    })
}

/// One generation's worth of work for the seal thread: the grids are a
/// plain clone of the committed barrier buffer (a memcpy — the cheapest
/// consistent copy possible, since the buffer is the next fused block's
/// write target), and serialization, digesting, and disk I/O all happen
/// off the compute path.
struct SealJob {
    generation: u64,
    manifest: CheckpointManifest,
    manifest_json: String,
    state: GridState,
}

/// Sealing is serialization + digest + I/O (write + fdatasync + rename)
/// and must not stall the barrier: the worker pool would sit idle for
/// milliseconds per seal. The supervisor thread pays only a grid-state
/// clone + enqueue; this dedicated thread drains the queue in generation
/// order (encode, save, then prune). Dropping the worker closes the
/// channel and joins, so every enqueued generation is durably on disk
/// before the run returns — the durability contract is unchanged, only
/// its latency moved off the compute path. When the thread cannot start
/// (fd/thread exhaustion), sealing degrades to inline synchronous writes
/// instead of losing durability.
struct SealWorker {
    tx: Option<mpsc::Sender<SealJob>>,
    handle: Option<thread::JoinHandle<()>>,
    /// Synchronous fallback when the thread failed to spawn.
    inline: Option<(DirStore, usize)>,
}

impl SealWorker {
    fn spawn(store: DirStore, keep: usize) -> SealWorker {
        let (tx, rx) = mpsc::channel::<SealJob>();
        let worker_store = store.clone();
        let spawned = thread::Builder::new()
            .name("stencilcl-ckpt-seal".into())
            .spawn(move || {
                for job in rx {
                    seal_one(&worker_store, keep, &job);
                }
            });
        match spawned {
            Ok(handle) => SealWorker {
                tx: Some(tx),
                handle: Some(handle),
                inline: None,
            },
            Err(_) => SealWorker {
                tx: None,
                handle: None,
                inline: Some((store, keep)),
            },
        }
    }

    fn enqueue(&self, job: SealJob) {
        if let Some(tx) = &self.tx {
            let generation = job.generation;
            if tx.send(job).is_ok() {
                return;
            }
            // The seal thread is gone (it cannot panic, but be defensive):
            // fall through to nothing — there is no receiver to recover.
            eprintln!("[stencilcl] checkpoint generation {generation} dropped: seal thread gone");
        } else if let Some((store, keep)) = &self.inline {
            seal_one(store, *keep, &job);
        }
    }
}

impl Drop for SealWorker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Encodes, saves, and prunes one generation; failures warn and keep the
/// run alive — the older generations on disk stay valid, which is strictly
/// better than killing a healthy run over a full disk.
fn seal_one(store: &DirStore, keep: usize, job: &SealJob) {
    let generation = job.generation;
    let bytes = match encode_with_json(&job.manifest, &job.manifest_json, &job.state) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("[stencilcl] checkpoint generation {generation} not encoded: {e}");
            return;
        }
    };
    if let Err(e) = store.save(generation, &bytes) {
        eprintln!(
            "[stencilcl] checkpoint generation {generation} not written \
             (older generations remain intact): {e}"
        );
        return;
    }
    let Ok(generations) = store.generations() else {
        return;
    };
    if generations.len() <= keep {
        return;
    }
    for &g in &generations[..generations.len() - keep] {
        if let Err(e) = store.remove(g) {
            eprintln!("[stencilcl] stale checkpoint generation {g} not pruned: {e}");
        }
    }
}

/// The supervisor-side writer: owns the store, cadence, and manifest
/// template, and is called at every fused-block barrier on the collector
/// thread (no synchronization needed — hence the `Cell`s).
pub(crate) struct CheckpointWriter {
    seal: SealWorker,
    every_barriers: u64,
    every_wall: Option<Duration>,
    final_seal: bool,
    /// The resuming-compatible program at the *global* iteration target.
    program: Program,
    program_hash: u64,
    policy_fingerprint: u64,
    design: Option<DesignSpec>,
    /// Global iteration target (resume base + this run's remainder).
    total_iterations: u64,
    base_iterations: u64,
    /// Global iterations already sealed when the current attempt started.
    attempt_base: Cell<u64>,
    /// Absolute deadline cutoff, shared with `RunLimits`.
    deadline: Option<Instant>,
    deadline_total_ms: Option<u64>,
    recorder: Option<Recorder>,
    next_generation: Cell<u64>,
    barriers_since: Cell<u64>,
    last_write: Cell<Instant>,
    /// Completed-iteration count of the newest sealed generation, so
    /// `finalize` skips a duplicate when the cadence already caught the
    /// final barrier.
    last_sealed: Cell<Option<u64>>,
}

impl CheckpointWriter {
    /// Builds the writer when `opts.checkpoint` is armed; `None` otherwise.
    /// `program` is the remainder handed to the supervisor; `base` rebases
    /// it onto the global run when resuming.
    pub(crate) fn from_options(
        program: &Program,
        opts: &ExecOptions,
        base: &ResumeBase,
        deadline: Option<Instant>,
        faults: &Arc<FaultPlan>,
    ) -> Option<CheckpointWriter> {
        let dir = opts.checkpoint.dir.clone()?;
        let store = DirStore::with_faults(dir, Arc::clone(faults));
        let total = base.iterations + program.iterations;
        let target = program.with_iterations(total);
        // Continue the store's numbering so resumed runs never reuse a
        // generation number (pruning and the ladder both rely on order).
        let next = store
            .generations()
            .ok()
            .and_then(|g| g.last().copied())
            .map_or(0, |g| g + 1);
        Some(CheckpointWriter {
            program_hash: program_hash(&target),
            policy_fingerprint: policy_fingerprint(&opts.policy),
            design: opts.checkpoint.design.clone(),
            every_barriers: opts.checkpoint.every_barriers.max(1),
            every_wall: opts.checkpoint.every_wall,
            final_seal: opts.checkpoint.final_seal,
            program: target,
            total_iterations: total,
            base_iterations: base.iterations,
            attempt_base: Cell::new(base.iterations),
            deadline,
            deadline_total_ms: opts
                .policy
                .deadline
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            recorder: opts.trace.clone(),
            next_generation: Cell::new(next),
            barriers_since: Cell::new(0),
            last_write: Cell::new(Instant::now()),
            last_sealed: Cell::new(None),
            seal: SealWorker::spawn(store, opts.checkpoint.keep_generations.max(1)),
        })
    }

    /// Rebases barrier-local iteration counts onto the global cursor; the
    /// supervisor calls this before every attempt.
    pub(crate) fn begin_attempt(&self, supervisor_done: u64) {
        self.attempt_base
            .set(self.base_iterations + supervisor_done);
    }

    /// Called at every committed fused-block barrier with the consistent
    /// buffer; seals a generation when the cadence says so.
    pub(crate) fn at_barrier<S: TraceSink>(
        &self,
        state: &GridState,
        attempt_iterations: u64,
        blocks_global: u64,
        sink: &S,
    ) {
        let since = self.barriers_since.get() + 1;
        self.barriers_since.set(since);
        let wall_due = self
            .every_wall
            .is_some_and(|w| self.last_write.get().elapsed() >= w);
        if since < self.every_barriers && !wall_due {
            return;
        }
        self.write(
            state,
            self.attempt_base.get() + attempt_iterations,
            blocks_global,
            sink,
        );
    }

    /// Seals the final generation of a successful run (skipped when the
    /// cadence already sealed the last barrier).
    pub(crate) fn finalize<S: TraceSink>(&self, state: &GridState, blocks_global: u64, sink: &S) {
        if !self.final_seal || self.last_sealed.get() == Some(self.total_iterations) {
            return;
        }
        self.write(state, self.total_iterations, blocks_global, sink);
    }

    /// Best-effort seal: the barrier pays a grid-state clone + enqueue; the
    /// encode, digest, and save (and any of their failures) happen on the
    /// seal thread. A generation number is consumed per enqueue, so a
    /// failed seal leaves a numbering gap the fallback ladder simply walks
    /// across. The `CheckpointWrite` span therefore measures the
    /// compute-path cost of sealing, not the serialization or the disk.
    fn write<S: TraceSink>(&self, state: &GridState, completed: u64, blocks: u64, sink: &S) {
        let t0 = sink.now();
        self.barriers_since.set(0);
        self.last_write.set(Instant::now());
        let generation = self.next_generation.get();
        let manifest = self.manifest(generation, completed, blocks);
        // The JSON is tiny (no payload), so serialize it here: it prices
        // the sealed file exactly for the counters, and it surfaces
        // encoding errors synchronously.
        let manifest_json = match serde_json::to_string(&manifest) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("[stencilcl] checkpoint generation {generation} not encoded: {e}");
                return;
            }
        };
        self.next_generation.set(generation + 1);
        self.last_sealed.set(Some(completed));
        if S::ACTIVE {
            let cells: u64 = manifest.grids.iter().map(|g| g.cells).sum();
            // magic + version + len + JSON + payload + digest — exactly
            // what `encode_with_json` seals for this manifest.
            sink.add(
                Counter::CkptBytes,
                16 + manifest_json.len() as u64 + cells * 8 + 8,
            );
            sink.add(Counter::CkptGenerations, 1);
        }
        self.seal.enqueue(SealJob {
            generation,
            manifest,
            manifest_json,
            state: state.clone(),
        });
        if S::ACTIVE {
            sink.span(0, 0, TracePhase::CheckpointWrite, t0, sink.now());
        }
    }

    fn manifest(&self, generation: u64, completed: u64, blocks: u64) -> CheckpointManifest {
        CheckpointManifest {
            generation,
            program_hash: self.program_hash,
            policy_fingerprint: self.policy_fingerprint,
            program: self.program.clone(),
            design: self.design.clone(),
            total_iterations: self.total_iterations,
            completed_iterations: completed,
            blocks_done: blocks,
            deadline_total_ms: self.deadline_total_ms,
            deadline_remaining_ms: self.deadline.map(|d| {
                u64::try_from(d.saturating_duration_since(Instant::now()).as_millis())
                    .unwrap_or(u64::MAX)
            }),
            grids: self
                .program
                .grids
                .iter()
                .map(|d| GridMeta {
                    name: d.name.clone(),
                    cells: d.extent.volume(),
                })
                .collect(),
            counters: self
                .recorder
                .as_ref()
                .map(Recorder::counters)
                .unwrap_or_default(),
        }
    }
}

/// Resumes a SIGKILLed (or otherwise dead) run from the newest valid
/// generation in `dir`, finishing the remaining iterations of `program`
/// under the same supervision ladder. The final grid is bit-exact with an
/// uninterrupted run. Further checkpoints continue into the same store.
///
/// # Errors
///
/// [`ExecError::CheckpointMismatch`] when no generation is resumable (see
/// [`load_latest`]); [`ExecError::DeadlineExceeded`] when the original
/// run's absolute deadline has already passed — resuming never grants new
/// wall-clock budget; plus anything the resumed run itself can fail with.
pub fn resume_supervised(
    program: &Program,
    partition: &Partition,
    dir: &Path,
    opts: &ExecOptions,
) -> Result<(GridState, RunReport), ExecError> {
    let (state, report, result) = resume_supervised_full(program, partition, dir, opts)?;
    result.map(|()| (state, report))
}

/// [`resume_supervised`] that separates load failures from run failures:
/// the outer error means no checkpoint could be loaded (nothing ran); an
/// inner error comes with the restored state and the attempt history of
/// the resumed run.
///
/// # Errors
///
/// Outer: [`ExecError::CheckpointMismatch`] only.
pub fn resume_supervised_full(
    program: &Program,
    partition: &Partition,
    dir: &Path,
    opts: &ExecOptions,
) -> Result<(GridState, RunReport, Result<(), ExecError>), ExecError> {
    resume_impl(program, partition, dir, opts, &Arc::new(FaultPlan::new()))
}

/// [`resume_supervised_full`] with a deterministic [`FaultPlan`] reaching
/// both the worker pool and the checkpoint store — the chaos-testing entry
/// point for I/O faults.
#[cfg(feature = "fault-injection")]
pub fn resume_supervised_injected_full(
    program: &Program,
    partition: &Partition,
    dir: &Path,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> Result<(GridState, RunReport, Result<(), ExecError>), ExecError> {
    resume_impl(program, partition, dir, opts, faults)
}

pub(crate) fn resume_impl(
    program: &Program,
    partition: &Partition,
    dir: &Path,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> Result<(GridState, RunReport, Result<(), ExecError>), ExecError> {
    let t0 = opts.trace.as_ref().map(TraceSink::now);
    let store = DirStore::with_faults(dir, Arc::clone(faults));
    let loaded = load_latest(&store, Some(program_hash(program)))?;
    for note in &loaded.fallback_notes {
        eprintln!("[stencilcl] checkpoint fallback: {note}");
    }
    let total = program.iterations;
    let done = loaded.manifest.completed_iterations;
    if done > total {
        return Err(ExecError::CheckpointMismatch {
            detail: format!(
                "generation {} already holds {done} completed iteration(s), \
                 past the resume target of {total}",
                loaded.manifest.generation
            ),
        });
    }
    let mut state = GridState::from_grids(program, loaded.grids)?;
    if let (Some(rec), Some(t0)) = (&opts.trace, t0) {
        rec.span(0, 0, TracePhase::CheckpointLoad, t0, rec.now());
    }

    // The manifest's deadline remainder is authoritative: the resumed run
    // inherits the original absolute cutoff, never a fresh budget.
    let mut opts = opts.clone();
    opts.checkpoint.dir = Some(dir.to_path_buf());
    match loaded.manifest.deadline_remaining_ms {
        Some(0) => {
            let report = RunReport {
                attempts: Vec::new(),
                path: RecoveryPath::Threaded,
            };
            let err = ExecError::DeadlineExceeded { completed: done };
            return Ok((state, report, Err(err)));
        }
        Some(ms) => opts.policy.deadline = Some(Duration::from_millis(ms)),
        None => opts.policy.deadline = None,
    }

    if done == total {
        let report = RunReport {
            attempts: Vec::new(),
            path: RecoveryPath::Threaded,
        };
        return Ok((state, report, Ok(())));
    }

    let rest = program.with_iterations(total - done);
    let base = ResumeBase {
        iterations: done,
        blocks: loaded.manifest.blocks_done,
    };
    let (mut report, result) = dispatch_with(&rest, partition, &mut state, &opts, faults, base);
    // Attempt and error coordinates become run-global, matching what an
    // uninterrupted run would have reported.
    for attempt in &mut report.attempts {
        attempt.start_iteration += done;
    }
    let result = result.map_err(|mut e| {
        globalize(&mut e, done);
        e
    });
    Ok((state, report, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_reference, run_supervised_full};
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 2.0;
        for d in 0..p.dim() {
            v = v * 23.0 + p.coord(d) as f64;
        }
        (v * 0.004).sin()
    }

    /// A unique, empty scratch directory per call (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stencilcl-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn blur() -> (Program, Partition) {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(9);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        (p, partition)
    }

    fn manifest_for(program: &Program, state: &GridState, completed: u64) -> CheckpointManifest {
        CheckpointManifest {
            generation: 0,
            program_hash: program_hash(program),
            policy_fingerprint: policy_fingerprint(&ExecPolicy::default()),
            program: program.clone(),
            design: None,
            total_iterations: program.iterations,
            completed_iterations: completed,
            blocks_done: completed,
            deadline_total_ms: None,
            deadline_remaining_ms: None,
            grids: program
                .grids
                .iter()
                .map(|d| GridMeta {
                    name: d.name.clone(),
                    cells: d.extent.volume(),
                })
                .collect(),
            counters: CounterSnapshot::default(),
        }
        .validate_against(state)
    }

    impl CheckpointManifest {
        /// Test helper: sanity-checks the manifest matches the state it is
        /// about to seal.
        fn validate_against(self, state: &GridState) -> Self {
            for g in &self.grids {
                assert!(state.grid(&g.name).is_ok());
            }
            self
        }
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let (p, _) = blur();
        let state = GridState::new(&p, init);
        let manifest = manifest_for(&p, &state, 4);
        let bytes = encode_checkpoint(&manifest, &state).unwrap();
        let (back_manifest, grids) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back_manifest, manifest);
        for decl in &p.grids {
            let orig = state.grid(&decl.name).unwrap();
            let back = &grids[&decl.name];
            assert_eq!(orig.as_slice().len(), back.as_slice().len());
            for (a, b) in orig.as_slice().iter().zip(back.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn digest_rejects_any_flipped_byte() {
        let (p, _) = blur();
        let state = GridState::uniform(&p, 1.5);
        let manifest = manifest_for(&p, &state, 2);
        let good = encode_checkpoint(&manifest, &state).unwrap();
        // Flip one byte in the header, the manifest, and the payload.
        for &at in &[4usize, 40, good.len() / 2, good.len() - 12] {
            let mut bad = good.clone();
            bad[at] ^= 0x10;
            let err = decode_checkpoint(&bad).unwrap_err();
            assert!(
                err.contains("digest") || err.contains("magic"),
                "byte {at}: unexpected reason {err}"
            );
        }
        // Truncation (torn write) is also caught.
        let err = decode_checkpoint(&good[..good.len() - 100]).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn program_hash_ignores_iterations_but_nothing_else() {
        let (p, _) = blur();
        assert_eq!(program_hash(&p), program_hash(&p.with_iterations(999)));
        assert_ne!(
            program_hash(&p),
            program_hash(&p.with_extent(Extent::new2(32, 32)))
        );
    }

    #[test]
    fn dir_store_seals_atomically_and_lists_in_order() {
        let dir = scratch("store");
        let store = DirStore::new(&dir);
        assert_eq!(store.generations().unwrap(), Vec::<u64>::new());
        for g in [2u64, 0, 7] {
            store.save(g, &[g as u8; 64]).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![0, 2, 7]);
        assert_eq!(store.load(7).unwrap(), vec![7u8; 64]);
        // No temp files survive a completed save.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        store.remove(2).unwrap();
        assert_eq!(store.generations().unwrap(), vec![0, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_is_bit_exact_and_prunes_generations() {
        let (p, partition) = blur();
        let dir = scratch("run");
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();

        let opts = ExecOptions::new().checkpoint(
            CheckpointPolicy::at(&dir)
                .every_barriers(1)
                .keep_generations(2),
        );
        let mut got = GridState::new(&p, init);
        let (report, result) = run_supervised_full(&p, &partition, &mut got, &opts);
        result.unwrap();
        assert_eq!(report.recoveries(), 0);
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);

        let store = DirStore::new(&dir);
        let generations = store.generations().unwrap();
        assert_eq!(
            generations.len(),
            2,
            "pruning keeps exactly two: {generations:?}"
        );
        let loaded = load_latest(&store, Some(program_hash(&p))).unwrap();
        assert!(loaded.fallback_notes.is_empty());
        assert_eq!(loaded.manifest.completed_iterations, p.iterations);
        assert_eq!(loaded.manifest.total_iterations, p.iterations);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_an_intermediate_generation_is_bit_exact() {
        let (p, partition) = blur();
        let dir = scratch("resume");
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();

        // Run to completion with a deep generation history, then discard the
        // newest generations — exactly what a mid-run SIGKILL leaves behind.
        let opts = ExecOptions::new().checkpoint(
            CheckpointPolicy::at(&dir)
                .every_barriers(1)
                .keep_generations(16),
        );
        let mut got = GridState::new(&p, init);
        run_supervised_full(&p, &partition, &mut got, &opts)
            .1
            .unwrap();
        let store = DirStore::new(&dir);
        let generations = store.generations().unwrap();
        assert!(generations.len() >= 3, "{generations:?}");
        for &g in &generations[generations.len() - 2..] {
            store.remove(g).unwrap();
        }
        let mid = load_latest(&store, None).unwrap();
        let done = mid.manifest.completed_iterations;
        assert!(done > 0 && done < p.iterations, "cut mid-run, got {done}");

        let (state, report) = resume_supervised(&p, &partition, &dir, &opts).unwrap();
        assert_eq!(expect.max_abs_diff(&state).unwrap(), 0.0);
        assert_eq!(report.attempts[0].start_iteration, done);
        assert_eq!(report.attempts[0].iterations_completed, p.iterations - done);
        // The resumed run sealed its own final generation.
        let final_load = load_latest(&store, Some(program_hash(&p))).unwrap();
        assert_eq!(final_load.manifest.completed_iterations, p.iterations);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_a_finished_run_returns_without_executing() {
        let (p, partition) = blur();
        let dir = scratch("finished");
        let opts = ExecOptions::new().checkpoint(CheckpointPolicy::at(&dir));
        let mut got = GridState::new(&p, init);
        run_supervised_full(&p, &partition, &mut got, &opts)
            .1
            .unwrap();
        let (state, report) = resume_supervised(&p, &partition, &dir, &opts).unwrap();
        assert!(report.attempts.is_empty());
        assert_eq!(got.max_abs_diff(&state).unwrap(), 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ladder_skips_corrupt_newest_and_reports_it() {
        let (p, _) = blur();
        let dir = scratch("ladder");
        let store = DirStore::new(&dir);
        let state = GridState::uniform(&p, 0.25);
        let mut m0 = manifest_for(&p, &state, 3);
        m0.generation = 0;
        store
            .save(0, &encode_checkpoint(&m0, &state).unwrap())
            .unwrap();
        let mut m1 = manifest_for(&p, &state, 6);
        m1.generation = 1;
        let mut newest = encode_checkpoint(&m1, &state).unwrap();
        let at = newest.len() / 3;
        newest[at] ^= 0xff; // corrupt after sealing
        store.save(1, &newest).unwrap();

        let loaded = load_latest(&store, Some(program_hash(&p))).unwrap();
        assert_eq!(
            loaded.manifest.completed_iterations, 3,
            "older generation wins"
        );
        assert_eq!(loaded.fallback_notes.len(), 1);
        assert!(
            loaded.fallback_notes[0].contains("generation 1"),
            "{:?}",
            loaded.fallback_notes
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ladder_with_every_generation_corrupt_is_a_permanent_mismatch() {
        let dir = scratch("allbad");
        let store = DirStore::new(&dir);
        store.save(0, b"not a checkpoint at all").unwrap();
        store.save(1, &[0u8; 300]).unwrap();
        let err = load_latest(&store, None).unwrap_err();
        let ExecError::CheckpointMismatch { detail } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert!(detail.contains("all 2 generation(s)"), "{detail}");
        assert!(detail.contains("generation 0"), "{detail}");
        assert!(detail.contains("generation 1"), "{detail}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_program_hash_fails_immediately_without_fallback() {
        let (p, partition) = blur();
        let dir = scratch("hash");
        let opts = ExecOptions::new().checkpoint(CheckpointPolicy::at(&dir));
        let mut got = GridState::new(&p, init);
        run_supervised_full(&p, &partition, &mut got, &opts)
            .1
            .unwrap();

        let other = p.with_extent(Extent::new2(16, 16));
        let f = StencilFeatures::extract(&other).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![4, 4]).unwrap();
        let part2 = Partition::new(other.extent(), &d, &f.growth).unwrap();
        let err = resume_supervised(&other, &part2, &dir, &opts).unwrap_err();
        let ExecError::CheckpointMismatch { detail } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert!(detail.contains("program hash"), "{detail}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_is_a_mismatch_not_a_panic() {
        let dir = scratch("empty");
        let err = load_latest(&DirStore::new(&dir), None).unwrap_err();
        assert!(matches!(err, ExecError::CheckpointMismatch { .. }));
    }

    #[test]
    fn expired_deadline_fails_at_resume_without_granting_new_time() {
        let (p, partition) = blur();
        let dir = scratch("deadline");
        let store = DirStore::new(&dir);
        let state = GridState::uniform(&p, 0.5);
        let mut m = manifest_for(&p, &state, 4);
        m.deadline_total_ms = Some(250);
        m.deadline_remaining_ms = Some(0); // the original cutoff has passed
        store
            .save(0, &encode_checkpoint(&m, &state).unwrap())
            .unwrap();

        let opts = ExecOptions::new();
        let (restored, report, result) =
            resume_supervised_full(&p, &partition, &dir, &opts).unwrap();
        assert!(report.attempts.is_empty(), "nothing may run");
        let err = result.unwrap_err();
        assert_eq!(err, ExecError::DeadlineExceeded { completed: 4 });
        // The restored state is intact for diagnostics.
        assert_eq!(
            restored.max_abs_diff(&GridState::uniform(&p, 0.5)).unwrap(),
            0.0
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remaining_deadline_budget_carries_into_the_resumed_run() {
        let (p, partition) = blur();
        let dir = scratch("budget");
        let store = DirStore::new(&dir);
        let state = GridState::uniform(&p, 0.5);
        let mut m = manifest_for(&p, &state, 4);
        m.deadline_total_ms = Some(60_000);
        m.deadline_remaining_ms = Some(30_000); // plenty for 5 tiny iterations
        store
            .save(0, &encode_checkpoint(&m, &state).unwrap())
            .unwrap();

        // Sequentially compute the expected tail: reference from the
        // checkpoint state for the remaining iterations.
        let mut expect = GridState::uniform(&p, 0.5);
        run_reference(&p.with_iterations(p.iterations - 4), &mut expect).unwrap();

        let (resumed, report) =
            resume_supervised(&p, &partition, &dir, &ExecOptions::new()).unwrap();
        assert_eq!(expect.max_abs_diff(&resumed).unwrap(), 0.0);
        assert_eq!(report.attempts[0].start_iteration, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
