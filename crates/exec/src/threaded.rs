use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender,
};
use stencilcl_grid::{Partition, Rect};
use stencilcl_lang::{GridState, Program};
use stencilcl_telemetry::{Counter, Disabled, TracePhase, TraceSink};

use crate::engine::Engine;
use crate::faults::{FaultKind, FaultPlan};
use crate::integrity::{scan_state, verify_slab, RunLimits};
use crate::options::{EngineKind, ExecOptions};
use crate::persist::CheckpointWriter;
use crate::pool::{
    apply_statement_split, check_slab_step, PipelinePlan, Slab, SplitScratch, PIPE_CAPACITY,
};
use crate::supervise::{CancelToken, ExecPolicy};
use crate::window::{extract_window, refresh_ring, write_back};
use crate::ExecError;

/// Granularity at which blocked pipe operations re-check the cancellation
/// token: a cancelled pool drains within one tick of each worker's current
/// compute finishing.
const TICK: Duration = Duration::from_millis(10);

/// Process-wide gauge of live pipe-executor worker threads (incremented at
/// spawn, decremented when a worker exits, including by panic unwind).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of pipe-executor worker threads currently alive in the process —
/// an operational gauge: after every executor call returns cleanly this
/// settles back to its previous value, because teardown joins the pool.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// RAII registration of one worker in the process-wide and per-run gauges.
/// Dropping (normal return or panic unwind) deregisters, so the gauges
/// never overcount dead threads.
struct WorkerGuard {
    run: Arc<AtomicUsize>,
}

impl WorkerGuard {
    fn register(run: &Arc<AtomicUsize>) -> Self {
        LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
        run.fetch_add(1, Ordering::SeqCst);
        WorkerGuard {
            run: Arc::clone(run),
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        self.run.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One block-execution order from the main thread to every worker.
#[derive(Debug, Clone, Copy)]
enum Command {
    /// Run one fused block: depth `plan.depths[depth]`, tagging slabs with
    /// global iterations starting at `step_base`, reading from buffer `src`
    /// and writing the tile back into buffer `1 - src`. `block` is the
    /// global fused-block index (offset by the supervisor across retries),
    /// used only as the fault-injection trigger.
    Pass {
        depth: usize,
        step_base: u64,
        src: usize,
        block: u64,
    },
}

/// A worker's end-of-block report: `(kernel, outcome)`.
type Done = (usize, Result<(), ExecError>);

/// One endpoint of a directed kernel-pair pipe, keyed by `(from, to)`.
type PairEndpoint<T> = ((usize, usize), T);

/// A worker's per-`(depth, region)` routing table: which of its pipe
/// endpoints serve each planned edge, and the overlap rects in local window
/// coordinates. Out entries keep the plan's edge-discovery order, which is
/// also the order `apply_statement_split` emits slabs in.
struct Route {
    out_chans: Vec<usize>,
    out_rects: Vec<Rect>,
    in_chans: Vec<usize>,
    in_rects: Vec<Rect>,
}

/// Everything a worker thread owns for the whole run.
struct WorkerCtx<S: TraceSink> {
    kernel: usize,
    plan: Arc<PipelinePlan>,
    buffers: [Arc<RwLock<GridState>>; 2],
    outs: Vec<PairEndpoint<Sender<Slab>>>,
    ins: Vec<PairEndpoint<Receiver<Slab>>>,
    token: CancelToken,
    faults: Arc<FaultPlan>,
    /// Which evaluation engine this run uses — decided once on the main
    /// thread at plan time, handed to workers as plain data.
    engine: EngineKind,
    /// The run's integrity envelope: deadline, health policy, and whether
    /// slabs are sealed/verified. Carried by value into every worker.
    limits: RunLimits,
    /// Telemetry sink (a zero-sized no-op unless the run records a trace).
    sink: S,
}

/// What one pool run accomplished before returning: completed (and
/// checkpointed) iterations, fused blocks, and worker threads that had to
/// be abandoned at teardown.
pub(crate) struct PoolRun {
    pub iterations: u64,
    pub blocks: u64,
    pub leaked: usize,
}

impl PoolRun {
    fn empty() -> Self {
        PoolRun {
            iterations: 0,
            blocks: 0,
            leaked: 0,
        }
    }
}

/// Runs the pipe-shared design with **real concurrency**: a persistent pool
/// of one OS thread per tile kernel, alive for the whole run, connected by
/// bounded crossbeam channels that play the role of the OpenCL pipes
/// (created once per directed kernel pair and reused across every region
/// and fused block).
///
/// Per fused block the main thread broadcasts a single [`Command::Pass`];
/// each worker then walks all of its regions — refreshing only the halo
/// ring of its persistent local window, computing the block with a
/// latency-hiding element order (boundary cells feeding the pipes are
/// evaluated and sent before the interior, Section 3.1 of the paper), and
/// writing its tile back into the spare global buffer. The two global
/// buffers alternate roles per block (read `src`, write `1 - src`), so no
/// full-grid snapshot is ever cloned.
///
/// Results must be identical to [`run_pipe_shared`](crate::run_pipe_shared)
/// (and therefore to the reference): the protocol only moves the same
/// values through channels instead of memcpys.
///
/// Uses the default [`ExecPolicy`] deadlines; see [`run_threaded_with`] to
/// tune them and [`run_supervised`](crate::run_supervised) for automatic
/// recovery.
///
/// # Errors
///
/// Same conditions as [`run_pipe_shared`](crate::run_pipe_shared), plus
/// [`ExecError::WorkerPanic`] if a worker thread dies and
/// [`ExecError::PipeStall`] if the watchdog sees no progress within its
/// deadline. On error the pool is cancelled cooperatively and joined —
/// worker threads do not outlive the call — and `state` is rolled back to
/// the last consistent fused-block barrier.
pub fn run_threaded(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
) -> Result<(), ExecError> {
    run_threaded_with(program, partition, state, &ExecPolicy::default())
}

/// [`run_threaded`] with explicit [`ExecPolicy`] deadlines.
///
/// # Errors
///
/// Same conditions as [`run_threaded`].
pub fn run_threaded_with(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    policy: &ExecPolicy,
) -> Result<(), ExecError> {
    let opts = ExecOptions::from_env().policy(policy.clone());
    run_threaded_opts(program, partition, state, &opts)
}

/// [`run_threaded`] with explicit [`ExecOptions`]: engine choice, policy
/// deadlines, and (optionally) a telemetry recorder. The sink is chosen here
/// — at plan time — and the whole pool monomorphizes against it, so an
/// untraced run pays nothing for the instrumentation.
///
/// # Errors
///
/// Same conditions as [`run_threaded`].
pub fn run_threaded_opts(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    let faults = Arc::new(FaultPlan::new());
    let limits = opts.limits();
    let result = match &opts.trace {
        Some(rec) => pool_run(
            program,
            partition,
            state,
            &opts.policy,
            &faults,
            0,
            opts.engine,
            opts.lanes,
            limits,
            None,
            &rec.clone(),
        ),
        None => pool_run(
            program,
            partition,
            state,
            &opts.policy,
            &faults,
            0,
            opts.engine,
            opts.lanes,
            limits,
            None,
            &Disabled,
        ),
    };
    match result {
        Ok(_) => Ok(()),
        Err((e, _)) => Err(e),
    }
}

/// One complete pool lifecycle: spawn, run every fused block, tear down.
///
/// On failure the pool is cancelled via the [`CancelToken`], workers are
/// joined (or, past `policy.teardown_grace`, abandoned and counted in
/// [`PoolRun::leaked`]), and `state` receives the grid as of the **last
/// consistent fused-block barrier** — the supervisor's checkpoint — along
/// with how many iterations that checkpoint represents.
///
/// `block_base` offsets the fused-block indices used as fault-injection
/// triggers, so a supervised retry continues the global block numbering
/// instead of restarting it.
///
/// `ckpt` is the optional durable-checkpoint writer: it observes every
/// committed fused-block barrier (the buffer the workers just finished
/// reading, i.e. the run's consistent checkpoint) and seals a generation to
/// disk on its own cadence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pool_run<S: TraceSink>(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    policy: &ExecPolicy,
    faults: &Arc<FaultPlan>,
    block_base: u64,
    engine: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    ckpt: Option<&CheckpointWriter>,
    sink: &S,
) -> Result<PoolRun, (ExecError, PoolRun)> {
    let plan = PipelinePlan::new(program, partition, lanes).map_err(|e| (e, PoolRun::empty()))?;
    if plan.depths.is_empty() {
        return Ok(PoolRun::empty());
    }
    let kernels = plan.tiles.first().map_or(0, Vec::len);
    let plan = Arc::new(plan);
    let token = CancelToken::default();
    let live = Arc::new(AtomicUsize::new(0));

    // Double buffer shared by the pool; workers read `src` (shared lock)
    // and write disjoint tiles into `1 - src` (short exclusive locks).
    let buffers = [
        Arc::new(RwLock::new(state.clone())),
        Arc::new(RwLock::new(state.clone())),
    ];

    // One bounded channel per directed kernel pair, for the whole run.
    let mut outs: Vec<Vec<PairEndpoint<Sender<Slab>>>> = (0..kernels).map(|_| Vec::new()).collect();
    let mut ins: Vec<Vec<PairEndpoint<Receiver<Slab>>>> =
        (0..kernels).map(|_| Vec::new()).collect();
    for &(from, to) in &plan.pairs {
        let (tx, rx) = bounded::<Slab>(PIPE_CAPACITY);
        outs[from].push(((from, to), tx));
        ins[to].push(((from, to), rx));
    }

    let (done_tx, done_rx) = unbounded::<Done>();
    let mut cmd_txs = Vec::with_capacity(kernels);
    let mut handles = Vec::with_capacity(kernels);
    for (k, (k_outs, k_ins)) in outs.into_iter().zip(ins).enumerate() {
        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let ctx = WorkerCtx {
            kernel: k,
            plan: Arc::clone(&plan),
            buffers: [Arc::clone(&buffers[0]), Arc::clone(&buffers[1])],
            outs: k_outs,
            ins: k_ins,
            token: token.clone(),
            faults: Arc::clone(faults),
            engine,
            limits: limits.clone(),
            sink: sink.clone(),
        };
        let done_tx = done_tx.clone();
        let guard = WorkerGuard::register(&live);
        let handle = thread::Builder::new()
            .name(format!("stencil-worker-{k}"))
            .spawn(move || {
                let _guard = guard;
                worker_loop(&ctx, &cmd_rx, &done_tx);
            })
            .map_err(|e| {
                (
                    ExecError::config(format!("failed to spawn worker {k}: {e}")),
                    PoolRun::empty(),
                )
            })?;
        cmd_txs.push(cmd_tx);
        handles.push(handle);
    }
    drop(done_tx);

    // Tile index for attributing a health hit to its owning kernel, built
    // only when the watchdog is armed (tiles are disjoint across kernels
    // within a region; the first containing rect wins).
    let tile_index: Vec<(usize, Rect)> = if limits.health.enabled() {
        let plan = &plan;
        (0..plan.regions.len())
            .flat_map(|r| (0..kernels).map(move |k| (k, plan.tiles[r][k])))
            .collect()
    } else {
        Vec::new()
    };

    let mut src = 0usize;
    let mut done_iters = 0u64;
    let mut done_blocks = 0u64;
    let mut outcome: Result<(), ExecError> = Ok(());
    while done_iters < plan.iterations {
        if let Err(e) = limits.check_deadline(done_iters) {
            outcome = Err(e);
            break;
        }
        let h = plan.fused.min(plan.iterations - done_iters);
        let depth = plan.depth_index(h);
        for tx in &cmd_txs {
            // A send can only fail if the worker already died; the collector
            // below will classify that as a panic or surface its error.
            let _ = tx.send(Command::Pass {
                depth,
                step_base: done_iters,
                src,
                block: block_base + done_blocks,
            });
        }
        if let Err(mut e) = collect_block(&done_rx, kernels, policy.watchdog, policy.drain, |k| {
            handles[k].is_finished()
        }) {
            // A worker hitting the deadline (or an external cancel) inside a
            // pipe tick cannot know the run's progress; patch in the last
            // checkpointed count.
            if let ExecError::DeadlineExceeded { completed }
            | ExecError::JobCancelled { completed } = &mut e
            {
                *completed = done_iters;
            }
            outcome = Err(e);
            break;
        }
        // Health scan of the buffer the block just wrote, *before* the
        // barrier commits: on divergence `buffers[src]` is still the last
        // healthy checkpoint and the teardown below hands it back.
        if limits.health.enabled() {
            let next = buffers[1 - src]
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = scan_state(
                &limits.health,
                &next,
                &plan.updated,
                &tile_index,
                done_iters,
                sink,
            ) {
                outcome = Err(e);
                break;
            }
        }
        done_iters += h;
        done_blocks += 1;
        src ^= 1;
        // The barrier has committed: `buffers[src]` is the consistent grid
        // as of `done_iters`. Offer it to the durable-checkpoint writer
        // (which seals a generation only when its cadence is due).
        if let Some(w) = ckpt {
            let checkpoint = buffers[src].read().unwrap_or_else(PoisonError::into_inner);
            w.at_barrier(&checkpoint, done_iters, block_base + done_blocks, sink);
        }
        // Feed the streamed-progress hook with the committed count (the
        // service's job events ride on this).
        limits.note_progress(done_iters);
    }

    drop(cmd_txs);
    let mut leaked = 0usize;
    if outcome.is_ok() {
        for (k, handle) in handles.into_iter().enumerate() {
            if handle.join().is_err() && outcome.is_ok() {
                outcome = Err(ExecError::WorkerPanic { kernel: k });
            }
        }
    } else {
        // Cooperative teardown: every blocking pipe operation re-checks the
        // token within one TICK, so wedged workers exit promptly instead of
        // leaking until process exit.
        token.cancel();
        let deadline = Instant::now() + policy.teardown_grace;
        while live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        // Gauge at zero means every worker is past its guard drop and join
        // returns immediately (`is_finished()` can lag the drop by the
        // thread's final exit, so it is not the signal to wait on here).
        let drained = live.load(Ordering::SeqCst) == 0;
        for handle in handles {
            if drained || handle.is_finished() {
                let _ = handle.join();
            } else {
                // Still mid-compute past the grace period: abandon it (the
                // thread exits on its own at its next cancellation check).
                leaked += 1;
            }
        }
    }

    // `buffers[src]` always holds the last consistent fused-block barrier:
    // the final grid on success, the supervisor's checkpoint on failure
    // (the failed block only wrote into `1 - src`).
    let [b0, b1] = buffers;
    let last = if src == 0 { b0 } else { b1 };
    *state = match Arc::try_unwrap(last) {
        Ok(lock) => lock.into_inner().unwrap_or_else(PoisonError::into_inner),
        Err(arc) => arc.read().unwrap_or_else(PoisonError::into_inner).clone(),
    };
    let run = PoolRun {
        iterations: done_iters,
        blocks: done_blocks,
        leaked,
    };
    match outcome {
        Ok(()) => Ok(run),
        Err(e) => Err((e, run)),
    }
}

/// Waits for every worker's end-of-block report, with a watchdog: if no
/// report arrives within `deadline`, the lowest-numbered silent worker is
/// blamed — [`ExecError::WorkerPanic`] if its thread already exited
/// (a panic never reports), [`ExecError::PipeStall`] if it is still wedged.
/// When some workers fail and others report hang-up cascades, the
/// root-cause error (non-cascade, lowest kernel) wins.
fn collect_block(
    done_rx: &Receiver<Done>,
    workers: usize,
    deadline: Duration,
    drain: Duration,
    worker_finished: impl Fn(usize) -> bool,
) -> Result<(), ExecError> {
    let mut reported = vec![false; workers];
    let mut failures: Vec<(usize, ExecError)> = Vec::new();
    while let Some(silent) = reported.iter().position(|r| !r) {
        let wait = if failures.is_empty() { deadline } else { drain };
        match done_rx.recv_timeout(wait) {
            Ok((k, Ok(()))) => reported[k] = true,
            Ok((k, Err(e))) => {
                reported[k] = true;
                failures.push((k, e));
            }
            Err(_) => {
                let e = if worker_finished(silent) {
                    ExecError::WorkerPanic { kernel: silent }
                } else {
                    ExecError::PipeStall { kernel: silent }
                };
                failures.push((silent, e));
                break;
            }
        }
    }
    match failures
        .into_iter()
        .min_by_key(|(k, e)| (is_cascade(e), *k))
    {
        None => Ok(()),
        Some((_, e)) => Err(e),
    }
}

/// A hang-up or cancellation error only tells us the pool was already going
/// down; prefer reporting the root cause.
fn is_cascade(e: &ExecError) -> bool {
    matches!(e, ExecError::Cancelled)
        || matches!(e, ExecError::BadConfiguration { detail } if detail.contains("hung up"))
}

/// Sends one slab, re-checking the cancellation token and the run deadline
/// every [`TICK`] while the pipe is full. With an active sink, counts the
/// slab and its payload bytes, plus the wall time spent blocked on a full
/// pipe. A deadline hit reports `completed: 0` — workers cannot know the
/// run's progress, so the pool's main loop patches in the checkpoint count.
fn pipe_send<S: TraceSink>(
    tx: &Sender<Slab>,
    mut slab: Slab,
    token: &CancelToken,
    limits: &RunLimits,
    sink: &S,
) -> Result<(), ExecError> {
    let bytes = (slab.values.len() * std::mem::size_of::<f64>()) as u64;
    let t0 = sink.now();
    loop {
        if token.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if limits.cancel_requested() {
            return Err(ExecError::JobCancelled { completed: 0 });
        }
        if limits.deadline_passed() {
            return Err(ExecError::DeadlineExceeded { completed: 0 });
        }
        match tx.send_timeout(slab, TICK) {
            Ok(()) => {
                if S::ACTIVE {
                    sink.add(Counter::StallNs, sink.now().saturating_sub(t0));
                    sink.add(Counter::SlabsSent, 1);
                    sink.add(Counter::HaloBytes, bytes);
                }
                return Ok(());
            }
            Err(SendTimeoutError::Timeout(s)) => slab = s,
            Err(SendTimeoutError::Disconnected(_)) => {
                return Err(ExecError::config("pipe consumer hung up"))
            }
        }
    }
}

/// Receives one slab, re-checking the cancellation token and the run
/// deadline every [`TICK`] while the pipe is empty. With an active sink,
/// counts the slab and the wall time spent blocked on an empty pipe. See
/// [`pipe_send`] for the `completed: 0` deadline convention.
fn pipe_recv<S: TraceSink>(
    rx: &Receiver<Slab>,
    token: &CancelToken,
    limits: &RunLimits,
    sink: &S,
) -> Result<Slab, ExecError> {
    let t0 = sink.now();
    loop {
        if token.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if limits.cancel_requested() {
            return Err(ExecError::JobCancelled { completed: 0 });
        }
        if limits.deadline_passed() {
            return Err(ExecError::DeadlineExceeded { completed: 0 });
        }
        match rx.recv_timeout(TICK) {
            Ok(slab) => {
                if S::ACTIVE {
                    sink.add(Counter::StallNs, sink.now().saturating_sub(t0));
                    sink.add(Counter::SlabsReceived, 1);
                }
                return Ok(slab);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ExecError::config("pipe producer hung up"))
            }
        }
    }
}

/// Sleeps for `total`, waking early if the pool is cancelled.
fn sleep_cancellable(token: &CancelToken, total: Duration) {
    let deadline = Instant::now() + total;
    while !token.is_cancelled() {
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            return;
        };
        thread::sleep(left.min(TICK));
    }
}

/// Body of one pool worker: build its evaluation engines (the plan's
/// compiled bytecode by default, AST interpreters in oracle mode) and
/// routing tables once, then serve [`Command::Pass`] orders until the
/// command channel closes. The first error is reported on the done channel
/// and ends the worker; dropping its pipe endpoints unblocks any partners
/// waiting on it. Every potentially-blocking operation observes the pool's
/// cancellation token, so a teardown is never blocked on this thread.
fn worker_loop<S: TraceSink>(
    ctx: &WorkerCtx<S>,
    cmd_rx: &Receiver<Command>,
    done_tx: &Sender<Done>,
) {
    let kernel = ctx.kernel;
    let plan = &ctx.plan;
    let regions = plan.regions.len();
    let setup = || -> Result<(Vec<Engine<'_>>, Vec<Vec<Route>>), ExecError> {
        let engines = (0..regions)
            .map(|r| {
                Engine::build(
                    ctx.engine,
                    &plan.local_programs[r][kernel],
                    &plan.compiled[r][kernel],
                )
            })
            .collect();
        let missing = || ExecError::config("no pipe endpoint for a planned edge");
        let mut routes = Vec::with_capacity(plan.depths.len());
        for depth in &plan.depths {
            let mut per_region = Vec::with_capacity(regions);
            for r in 0..regions {
                let origin = plan.windows[r][kernel].lo();
                let mut route = Route {
                    out_chans: Vec::new(),
                    out_rects: Vec::new(),
                    in_chans: Vec::new(),
                    in_rects: Vec::new(),
                };
                for e in &depth.edges[r] {
                    if e.from == kernel {
                        let pos = ctx.outs.iter().position(|(p, _)| *p == (e.from, e.to));
                        route.out_chans.push(pos.ok_or_else(missing)?);
                        route.out_rects.push(e.overlap.translate(&-origin)?);
                    }
                    if e.to == kernel {
                        let pos = ctx.ins.iter().position(|(p, _)| *p == (e.from, e.to));
                        route.in_chans.push(pos.ok_or_else(missing)?);
                        route.in_rects.push(e.overlap.translate(&-origin)?);
                    }
                }
                per_region.push(route);
            }
            routes.push(per_region);
        }
        Ok((engines, routes))
    };
    let (engines, routes) = match setup() {
        Ok(v) => v,
        Err(e) => {
            let _ = done_tx.send((kernel, Err(e)));
            return;
        }
    };
    let updated: Vec<&str> = plan.updated.iter().map(String::as_str).collect();
    // Persistent local windows, one per region, alive across every block.
    let mut locals: Vec<Option<GridState>> = vec![None; regions];
    let mut scratch = SplitScratch::new();
    // Per-endpoint slab sequence counters, persistent across blocks: both
    // ends of every channel count monotonically from 0 for the pool's whole
    // life, so the checksum also proves nothing was dropped or reordered.
    let mut out_seqs = vec![0u64; ctx.outs.len()];
    let mut in_seqs = vec![0u64; ctx.ins.len()];
    // Idle accounting: from spawn until the first command this worker is in
    // its Launch phase; between a block's done-report and the next command
    // it sits at the fused-block Barrier. Flushed as a span at the moment
    // each command arrives (same thread, so spans stay sequential).
    let mut idle_since = if S::ACTIVE {
        Some((ctx.sink.now(), TracePhase::Launch))
    } else {
        None
    };
    while let Ok(Command::Pass {
        depth,
        step_base,
        src,
        block,
    }) = cmd_rx.recv()
    {
        if let Some((t0, phase)) = idle_since.take() {
            ctx.sink.span(kernel, 0, phase, t0, ctx.sink.now());
        }
        let mut corrupt_tags = false;
        let mut corrupt_payload = false;
        match ctx.faults.fire(kernel, block) {
            None => {}
            Some(FaultKind::WorkerPanic) => {
                panic!("injected worker panic (kernel {kernel}, block {block})")
            }
            Some(FaultKind::PipeStall) => {
                // Wedge silently — never report this block — until the
                // supervisor cancels the pool, then exit cleanly.
                while !ctx.token.is_cancelled() {
                    thread::sleep(TICK);
                }
                return;
            }
            Some(FaultKind::DelayedSlab(ms)) => {
                sleep_cancellable(&ctx.token, Duration::from_millis(ms));
            }
            Some(FaultKind::CorruptStepTag) => corrupt_tags = true,
            Some(FaultKind::CorruptPayload) => corrupt_payload = true,
            // I/O fault kinds are dispatched by `FaultPlan::fire_io` from
            // the checkpoint store, and job-level kinds by
            // `FaultPlan::fire_job` from pool runners — never by the
            // per-block worker hook.
            Some(
                FaultKind::TornWrite(_)
                | FaultKind::ShortRead
                | FaultKind::CorruptCheckpoint(_)
                | FaultKind::FsyncFail
                | FaultKind::RunnerPanicAtJob
                | FaultKind::StallJob(_),
            ) => {}
        }
        let result = run_pass(
            ctx,
            &engines,
            &routes[depth],
            &updated,
            &mut locals,
            &mut scratch,
            &mut out_seqs,
            &mut in_seqs,
            depth,
            step_base,
            src,
            corrupt_tags,
            corrupt_payload,
        );
        let failed = result.is_err();
        if S::ACTIVE {
            idle_since = Some((ctx.sink.now(), TracePhase::Barrier));
        }
        if done_tx.send((kernel, result)).is_err() || failed {
            return;
        }
    }
    // Command channel closed: flush the trailing barrier wait so the final
    // teardown idle shows up in the trace.
    if let Some((t0, phase)) = idle_since {
        ctx.sink.span(kernel, 0, phase, t0, ctx.sink.now());
    }
}

/// One worker's share of one fused block, across all of its regions.
#[allow(clippy::too_many_arguments)]
fn run_pass<S: TraceSink>(
    ctx: &WorkerCtx<S>,
    engines: &[Engine<'_>],
    routes: &[Route],
    updated: &[&str],
    locals: &mut [Option<GridState>],
    scratch: &mut SplitScratch,
    out_seqs: &mut [u64],
    in_seqs: &mut [u64],
    depth: usize,
    step_base: u64,
    src: usize,
    corrupt_tags: bool,
    corrupt_payload: bool,
) -> Result<(), ExecError> {
    let kernel = ctx.kernel;
    let sink = &ctx.sink;
    let plan = &ctx.plan;
    let dp = &plan.depths[depth];
    let cur = ctx.buffers[src]
        .read()
        .unwrap_or_else(PoisonError::into_inner);
    for r in 0..plan.regions.len() {
        let origin = plan.windows[r][kernel].lo();
        let lp = &plan.local_programs[r][kernel];
        let read_t0 = sink.now();
        match &mut locals[r] {
            slot @ None => {
                *slot = Some(extract_window(&cur, lp, lp, &plan.windows[r][kernel])?);
                if S::ACTIVE {
                    let cells: u64 = plan.windows[r][kernel].volume();
                    sink.add(
                        Counter::HaloBytes,
                        cells * std::mem::size_of::<f64>() as u64 * lp.grids.len() as u64,
                    );
                }
            }
            Some(local) => {
                refresh_ring(local, &cur, &plan.rings[r][kernel], &origin, updated)?;
                if S::ACTIVE {
                    let cells: u64 = plan.rings[r][kernel].iter().map(Rect::volume).sum();
                    sink.add(
                        Counter::HaloBytes,
                        cells * std::mem::size_of::<f64>() as u64 * updated.len() as u64,
                    );
                }
            }
        }
        if S::ACTIVE {
            sink.span(kernel, r, TracePhase::Read, read_t0, sink.now());
        }
        let local = locals[r].as_mut().expect("window extracted");
        let route = &routes[r];
        for i in 1..=dp.h {
            for s in 0..lp.updates.len() {
                let domain = dp.local_domain(r, kernel, i, s, plan.stmts);
                let step = (step_base + i, s);
                let compute_t0 = sink.now();
                // Produce first (boundary cells against the pristine
                // pre-state), so downstream kernels are fed before we turn
                // to the interior...
                apply_statement_split(
                    &engines[r],
                    local,
                    s,
                    domain,
                    &route.out_rects,
                    scratch,
                    sink,
                    {
                        let out_chans = &route.out_chans;
                        let out_seqs = &mut *out_seqs;
                        move |e, values| {
                            let chan = out_chans[e];
                            let mut slab = Slab::tagged(step, values, corrupt_tags);
                            if ctx.limits.integrity {
                                slab = slab.seal(out_seqs[chan]);
                                out_seqs[chan] += 1;
                            }
                            // Injected payload corruption flips a bit *after*
                            // sealing: with integrity on the receiver's
                            // recompute catches it; with integrity off it is
                            // exactly the silent corruption the checksums
                            // exist to stop.
                            if corrupt_payload {
                                slab = slab.corrupt_payload();
                            }
                            pipe_send(&ctx.outs[chan].1, slab, &ctx.token, &ctx.limits, &ctx.sink)
                        }
                    },
                )?;
                if S::ACTIVE {
                    sink.span(
                        kernel,
                        r,
                        TracePhase::Compute {
                            iteration: step_base + i,
                        },
                        compute_t0,
                        sink.now(),
                    );
                }
                // ...then consume: splice the upstream slabs in, in the
                // plan's edge order.
                let target = &lp.updates[s].target;
                let wait_t0 = sink.now();
                for (chan, dst) in route.in_chans.iter().zip(&route.in_rects) {
                    let slab = pipe_recv(&ctx.ins[*chan].1, &ctx.token, &ctx.limits, sink)?;
                    check_slab_step(kernel, slab.step, step)?;
                    if ctx.limits.integrity {
                        // An unsealed slab under an integrity run is itself a
                        // protocol violation — treat it as corruption.
                        let Some(sum) = slab.checksum else {
                            return Err(ExecError::SlabCorrupt { kernel, step });
                        };
                        verify_slab(kernel, in_seqs[*chan], slab.step, &slab.values, sum, sink)?;
                        in_seqs[*chan] += 1;
                    }
                    local.grid_mut(target)?.write_window(dst, &slab.values)?;
                }
                if S::ACTIVE && !route.in_chans.is_empty() {
                    sink.span(
                        kernel,
                        r,
                        TracePhase::PipeWait {
                            iteration: step_base + i,
                        },
                        wait_t0,
                        sink.now(),
                    );
                }
            }
        }
        let write_t0 = sink.now();
        let mut next = ctx.buffers[1 - src]
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        write_back(&mut next, local, updated, &origin, &plan.tiles[r][kernel])?;
        if S::ACTIVE {
            sink.span(kernel, r, TracePhase::Write, write_t0, sink.now());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipe_shared, run_reference};
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 1.0;
        for d in 0..p.dim() {
            v = v * 29.0 + p.coord(d) as f64;
        }
        (v * 0.003).sin()
    }

    fn check(program: &Program, design: &Design) {
        let features = StencilFeatures::extract(program).unwrap();
        let partition = Partition::new(program.extent(), design, &features.growth).unwrap();
        let mut expect = GridState::new(program, init);
        run_reference(program, &mut expect).unwrap();
        let mut threaded = GridState::new(program, init);
        run_threaded(program, &partition, &mut threaded).unwrap();
        assert_eq!(
            expect.max_abs_diff(&threaded).unwrap(),
            0.0,
            "{}",
            program.name
        );
        // Threaded and sequential pipe executions agree bit for bit.
        let mut sequential = GridState::new(program, init);
        run_pipe_shared(program, &partition, &mut sequential).unwrap();
        assert_eq!(sequential.max_abs_diff(&threaded).unwrap(), 0.0);
    }

    #[test]
    fn jacobi_2d_threads_match_reference() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(6);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn fdtd_2d_threads_match_reference() {
        let p = programs::fdtd_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(4);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn heterogeneous_threads_match_reference() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(6);
        let d = Design::heterogeneous(2, vec![vec![6, 10], vec![10, 6]]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn one_dimensional_pipeline_of_four_workers() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(64))
            .with_iterations(8);
        let d = Design::equal(DesignKind::PipeShared, 4, vec![4], vec![16]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn partial_final_block_runs_in_the_same_pool() {
        // 7 iterations at depth 3: the pool serves blocks of 3, 3, 1 without
        // being torn down, reusing windows and channels across depths.
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(7);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn custom_policy_deadlines_stay_bit_exact() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(5);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![8, 8]).unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let policy = ExecPolicy {
            watchdog: Duration::from_secs(5),
            drain: Duration::from_millis(200),
            ..ExecPolicy::default()
        };
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        let mut got = GridState::new(&p, init);
        run_threaded_with(&p, &partition, &mut got, &policy).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
    }

    #[test]
    fn rejects_baseline_partition() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(run_threaded(&p, &partition, &mut s).is_err());
    }

    #[test]
    fn watchdog_reports_a_stall_with_the_kernel_id() {
        let (done_tx, done_rx) = unbounded::<Done>();
        done_tx.send((0, Ok(()))).unwrap();
        let err = collect_block(
            &done_rx,
            2,
            Duration::from_millis(50),
            Duration::from_millis(50),
            |_| false,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::PipeStall { kernel: 1 });
    }

    #[test]
    fn watchdog_reports_a_panic_when_the_silent_worker_is_dead() {
        let (done_tx, done_rx) = unbounded::<Done>();
        drop(done_tx);
        let err = collect_block(
            &done_rx,
            1,
            Duration::from_millis(50),
            Duration::from_millis(50),
            |_| true,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::WorkerPanic { kernel: 0 });
    }

    #[test]
    fn root_cause_errors_outrank_hangup_and_cancel_cascades() {
        let (done_tx, done_rx) = unbounded::<Done>();
        done_tx
            .send((0, Err(ExecError::config("pipe producer hung up"))))
            .unwrap();
        done_tx
            .send((1, Err(ExecError::config("kernel 1: pipe protocol skew"))))
            .unwrap();
        done_tx.send((2, Err(ExecError::Cancelled))).unwrap();
        let err = collect_block(
            &done_rx,
            3,
            Duration::from_secs(5),
            Duration::from_secs(5),
            |_| false,
        )
        .unwrap_err();
        assert!(err.to_string().contains("protocol skew"));
    }

    #[test]
    fn pipe_helpers_observe_cancellation() {
        let off = RunLimits::disabled();
        let (tx, rx) = bounded::<Slab>(1);
        let token = CancelToken::default();
        token.cancel();
        assert_eq!(
            pipe_recv(&rx, &token, &off, &Disabled).unwrap_err(),
            ExecError::Cancelled
        );
        let slab = Slab::tagged((1, 0), vec![0.0], false);
        assert_eq!(
            pipe_send(&tx, slab, &token, &off, &Disabled).unwrap_err(),
            ExecError::Cancelled
        );
        // Without cancellation, a hung-up partner is still classified.
        let fresh = CancelToken::default();
        drop(tx);
        assert!(pipe_recv(&rx, &fresh, &off, &Disabled)
            .unwrap_err()
            .to_string()
            .contains("hung up"));
    }

    #[test]
    fn pipe_helpers_observe_the_run_deadline() {
        let expired = RunLimits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..RunLimits::disabled()
        };
        let token = CancelToken::default();
        let (tx, rx) = bounded::<Slab>(1);
        assert_eq!(
            pipe_recv(&rx, &token, &expired, &Disabled).unwrap_err(),
            ExecError::DeadlineExceeded { completed: 0 }
        );
        let slab = Slab::tagged((1, 0), vec![0.0], false);
        assert_eq!(
            pipe_send(&tx, slab, &token, &expired, &Disabled).unwrap_err(),
            ExecError::DeadlineExceeded { completed: 0 }
        );
    }
}
