use std::thread;

use crossbeam::channel::{bounded, Receiver, Sender};
use stencilcl_grid::{FaceKind, Partition, Rect};
use stencilcl_lang::{GridState, Interpreter, Program, StencilFeatures};

use crate::domains::{reject_diagonals, DomainPlan};
use crate::overlapped::window_extent;
use crate::window::{extract_window, write_back};
use crate::ExecError;

/// One boundary-slab message: the values of the statement's target array over
/// the agreed overlap region, tagged with its (iteration, statement) step for
/// protocol checking.
#[derive(Debug)]
struct Slab {
    step: (u64, usize),
    values: Vec<f64>,
}

/// Runs the pipe-shared design with **real concurrency**: one OS thread per
/// kernel of each region, connected by bounded crossbeam channels that play
/// the role of the OpenCL pipes. After every update statement each worker
/// pushes its freshly computed boundary slab downstream and blocks until its
/// own upstream slabs arrive — the same producer/consumer discipline the
/// FPGA's FIFOs enforce.
///
/// Results must be identical to [`run_pipe_shared`](crate::run_pipe_shared)
/// (and therefore to the reference): the protocol only moves the same values
/// through channels instead of memcpys.
///
/// # Errors
///
/// Same conditions as [`run_pipe_shared`](crate::run_pipe_shared), plus
/// [`ExecError::WorkerPanic`] if a worker thread dies.
pub fn run_threaded(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
) -> Result<(), ExecError> {
    let features = StencilFeatures::extract(program)?;
    if !partition.design().kind().uses_pipes() {
        return Err(ExecError::config(
            "run_threaded expects a pipe-shared or heterogeneous design",
        ));
    }
    reject_diagonals(&features)?;

    let kind = partition.design().kind();
    let fused = partition.design().fused();
    let grid_rect = Rect::from_extent(&program.extent());
    let updated: Vec<&str> = program.updated_grids();
    let mut done = 0u64;
    while done < program.iterations {
        let h_eff = fused.min(program.iterations - done);
        let snapshot = state.clone();
        for region in partition.region_indices() {
            let tiles = partition.tiles_for_region(&region);
            let plans: Vec<DomainPlan> = tiles
                .iter()
                .map(|t| DomainPlan::new(&features, t, kind, h_eff, &grid_rect))
                .collect::<Result<_, _>>()?;
            let programs: Vec<Program> = plans
                .iter()
                .map(|dp| Ok(program.with_extent(window_extent(&dp.buffer())?)))
                .collect::<Result<_, ExecError>>()?;
            let locals: Vec<GridState> = plans
                .iter()
                .zip(&programs)
                .map(|(dp, lp)| extract_window(&snapshot, program, lp, &dp.buffer()))
                .collect::<Result<_, _>>()?;

            // Build the directed pipe channels. outgoing[t] lists
            // (sender, overlap); incoming[t] lists (receiver, overlap).
            let k = tiles.len();
            let mut outgoing: Vec<Vec<(Sender<Slab>, Rect)>> = (0..k).map(|_| Vec::new()).collect();
            let mut incoming: Vec<Vec<(Receiver<Slab>, Rect)>> =
                (0..k).map(|_| Vec::new()).collect();
            for (t, tile) in tiles.iter().enumerate() {
                for f in tile.faces() {
                    if let FaceKind::Shared { neighbor } = f.kind {
                        let overlap = plans[neighbor]
                            .halo_rect(f.axis, !f.high)
                            .intersect(&plans[t].buffer())
                            .expect("region tiles share one dimensionality");
                        let (tx, rx) = bounded::<Slab>(2);
                        outgoing[t].push((tx, overlap));
                        incoming[neighbor].push((rx, overlap));
                    }
                }
            }

            let mut results: Vec<Option<Result<GridState, ExecError>>> =
                (0..k).map(|_| None).collect();
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(k);
                for (t, (mut local, (outs, ins))) in locals
                    .into_iter()
                    .zip(outgoing.into_iter().zip(incoming))
                    .enumerate()
                {
                    let plan = &plans[t];
                    let lp = &programs[t];
                    let prog = &*program;
                    handles.push(scope.spawn(move || {
                        let interp = Interpreter::new(lp);
                        let origin = plan.buffer().lo();
                        for i in 1..=h_eff {
                            for s in 0..prog.updates.len() {
                                let domain = plan.domain(i, s).translate(&-origin)?;
                                interp.apply_statement(&mut local, s, &domain)?;
                                let target = &prog.updates[s].target;
                                // Produce: push our slab into each pipe.
                                for (tx, overlap) in &outs {
                                    let rect = overlap.translate(&-origin)?;
                                    let values = local.grid(target)?.read_window(&rect)?;
                                    tx.send(Slab { step: (i, s), values }).map_err(|_| {
                                        ExecError::config("pipe consumer hung up".to_string())
                                    })?;
                                }
                                // Consume: splice the upstream slabs in.
                                for (rx, overlap) in &ins {
                                    let slab = rx.recv().map_err(|_| {
                                        ExecError::config("pipe producer hung up".to_string())
                                    })?;
                                    debug_assert_eq!(slab.step, (i, s), "pipe protocol skew");
                                    let rect = overlap.translate(&-origin)?;
                                    local.grid_mut(target)?.write_window(&rect, &slab.values)?;
                                }
                            }
                        }
                        Ok(local)
                    }));
                }
                for (t, h) in handles.into_iter().enumerate() {
                    results[t] = Some(h.join().unwrap_or(Err(ExecError::WorkerPanic { kernel: t })));
                }
            });

            for (t, tile) in tiles.iter().enumerate() {
                let local = results[t].take().expect("every worker reports")?;
                write_back(state, &local, &updated, &plans[t].buffer().lo(), &tile.rect())?;
            }
        }
        done += h_eff;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipe_shared, run_reference};
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::programs;

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 1.0;
        for d in 0..p.dim() {
            v = v * 29.0 + p.coord(d) as f64;
        }
        (v * 0.003).sin()
    }

    fn check(program: &Program, design: &Design) {
        let features = StencilFeatures::extract(program).unwrap();
        let partition = Partition::new(program.extent(), design, &features.growth).unwrap();
        let mut expect = GridState::new(program, init);
        run_reference(program, &mut expect).unwrap();
        let mut threaded = GridState::new(program, init);
        run_threaded(program, &partition, &mut threaded).unwrap();
        assert_eq!(expect.max_abs_diff(&threaded).unwrap(), 0.0, "{}", program.name);
        // Threaded and sequential pipe executions agree bit for bit.
        let mut sequential = GridState::new(program, init);
        run_pipe_shared(program, &partition, &mut sequential).unwrap();
        assert_eq!(sequential.max_abs_diff(&threaded).unwrap(), 0.0);
    }

    #[test]
    fn jacobi_2d_threads_match_reference() {
        let p = programs::jacobi_2d().with_extent(Extent::new2(32, 32)).with_iterations(6);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn fdtd_2d_threads_match_reference() {
        let p = programs::fdtd_2d().with_extent(Extent::new2(24, 24)).with_iterations(4);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn heterogeneous_threads_match_reference() {
        let p = programs::jacobi_2d().with_extent(Extent::new2(32, 32)).with_iterations(6);
        let d = Design::heterogeneous(2, vec![vec![6, 10], vec![10, 6]]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn one_dimensional_pipeline_of_four_workers() {
        let p = programs::jacobi_1d().with_extent(Extent::new1(64)).with_iterations(8);
        let d = Design::equal(DesignKind::PipeShared, 4, vec![4], vec![16]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn rejects_baseline_partition() {
        let p = programs::jacobi_1d().with_extent(Extent::new1(32)).with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(run_threaded(&p, &partition, &mut s).is_err());
    }
}
