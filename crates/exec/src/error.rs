use std::fmt;

use stencilcl_grid::GridError;
use stencilcl_lang::LangError;

/// Errors produced by the functional executors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// An underlying language/interpreter error.
    Lang(LangError),
    /// An underlying geometry error.
    Grid(GridError),
    /// The stencil reads diagonal offsets, which face-only pipe exchange
    /// cannot serve (see the crate-level limitations).
    DiagonalAccess {
        /// The offending statement's target grid.
        statement: String,
    },
    /// The design/partition is inconsistent with the program (e.g. baseline
    /// executor asked to run a pipe partition).
    BadConfiguration {
        /// Human-readable description.
        detail: String,
    },
    /// A worker thread of the threaded executor panicked.
    WorkerPanic {
        /// Kernel id of the failed worker.
        kernel: usize,
    },
    /// The threaded executor's watchdog saw no progress: a worker failed to
    /// report its pass within the deadline, indicating a wedged pipe
    /// exchange. The pool is then cancelled cooperatively and joined, so
    /// the stall does not leak worker threads.
    PipeStall {
        /// Kernel id of the first worker that failed to report.
        kernel: usize,
    },
    /// A worker exited because its pool was cancelled during teardown.
    /// Never the root cause of a failure — the error that triggered the
    /// teardown is reported instead.
    Cancelled,
    /// Supervised execution spent its whole retry budget on transient
    /// faults and was configured without a sequential fallback.
    RetriesExhausted {
        /// Threaded attempts made (first attempt plus retries).
        attempts: u32,
        /// The classified fault of the final attempt (also available via
        /// [`std::error::Error::source`]).
        last: Box<ExecError>,
    },
    /// A boundary slab failed checksum or sequence verification at splice
    /// time: the payload was corrupted somewhere between send and receive.
    /// Classified transient — a deterministic recompute from the last
    /// fused-block checkpoint repairs it.
    SlabCorrupt {
        /// Kernel id of the receiver that detected the mismatch.
        kernel: usize,
        /// The `(iteration, statement)` step tag the corrupt slab carried.
        step: (u64, usize),
    },
    /// The numerical-health watchdog sampled a non-finite or out-of-bound
    /// value at a fused-block barrier. Classified permanent — deterministic
    /// recompute reproduces the same divergence, so the supervisor must not
    /// burn retries on it. The output buffer keeps the last healthy
    /// checkpoint.
    NumericDivergence {
        /// Kernel whose tile contains the divergent cell (0 for the
        /// unpartitioned executors).
        kernel: usize,
        /// Number of iterations fully completed before the unhealthy
        /// barrier (the divergence appeared in the following block).
        iteration: u64,
        /// Coordinates of the first divergent cell in scan order.
        cell: Vec<i64>,
        /// The offending value, for the diagnostic. NaN compares unequal,
        /// so comparisons go through `to_bits`.
        value: f64,
    },
    /// The wall-clock deadline from [`ExecPolicy::deadline`] elapsed before
    /// the run finished. Checked cooperatively at fused-block barriers and
    /// inside the pipe tick, so workers join instead of wedging. Classified
    /// permanent — retrying cannot create more time.
    ///
    /// [`ExecPolicy::deadline`]: crate::ExecPolicy
    DeadlineExceeded {
        /// Iterations fully completed before the deadline fired.
        completed: u64,
    },
    /// The run was cancelled from outside through a
    /// [`CancelHandle`](crate::CancelHandle) — a client abort, a service
    /// drain. Unlike [`ExecError::Cancelled`] (the *internal* teardown
    /// marker workers exit with), this is the run's root-cause outcome and
    /// is classified permanent: the supervisor must stop at the last
    /// consistent barrier instead of retrying work nobody wants anymore.
    /// `state` keeps that barrier's grid, so an armed checkpoint store
    /// stays resumable.
    JobCancelled {
        /// Iterations fully completed and checkpointed before the
        /// cancellation was observed.
        completed: u64,
    },
    /// The scheduler's stuck-job watchdog saw the job's `Progress`
    /// heartbeat go silent past its stall timeout, cancelled the run, and
    /// spent the whole auto-resume budget without the job ever finishing.
    /// Unlike [`ExecError::PipeStall`] (one attempt's wedged pipe, absorbed
    /// by the supervisor's retry ladder), this is the *job-level* terminal
    /// verdict: every resume from the latest sealed generation stalled
    /// again.
    JobStalled {
        /// Iterations fully completed and checkpointed across all attempts.
        completed: u64,
        /// Auto-resume attempts spent before giving up.
        resumes: u32,
    },
    /// No checkpoint generation in the store could be resumed: either the
    /// newest intact manifest describes a different program (its sealed
    /// program hash does not match the one being resumed), or every
    /// generation failed digest/decoding validation. Classified permanent —
    /// the on-disk state can never become compatible by retrying.
    CheckpointMismatch {
        /// Per-generation diagnostics from the fallback ladder.
        detail: String,
    },
}

impl ExecError {
    /// Stable machine-readable tag, identical to the `kind` field of the
    /// serialized JSON shape. Job-history consumers match on this without
    /// re-parsing diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::Lang(_) => "Lang",
            ExecError::Grid(_) => "Grid",
            ExecError::DiagonalAccess { .. } => "DiagonalAccess",
            ExecError::BadConfiguration { .. } => "BadConfiguration",
            ExecError::WorkerPanic { .. } => "WorkerPanic",
            ExecError::PipeStall { .. } => "PipeStall",
            ExecError::Cancelled => "Cancelled",
            ExecError::RetriesExhausted { .. } => "RetriesExhausted",
            ExecError::SlabCorrupt { .. } => "SlabCorrupt",
            ExecError::NumericDivergence { .. } => "NumericDivergence",
            ExecError::DeadlineExceeded { .. } => "DeadlineExceeded",
            ExecError::JobCancelled { .. } => "JobCancelled",
            ExecError::JobStalled { .. } => "JobStalled",
            ExecError::CheckpointMismatch { .. } => "CheckpointMismatch",
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(e) => write!(f, "language error: {e}"),
            ExecError::Grid(e) => write!(f, "geometry error: {e}"),
            ExecError::DiagonalAccess { statement } => write!(
                f,
                "statement updating `{statement}` reads diagonal offsets; \
                 pipe-based execution exchanges face slabs only"
            ),
            ExecError::BadConfiguration { detail } => write!(f, "bad configuration: {detail}"),
            ExecError::WorkerPanic { kernel } => {
                write!(f, "worker thread for kernel {kernel} panicked")
            }
            ExecError::PipeStall { kernel } => {
                write!(
                    f,
                    "pipe executor stalled: worker for kernel {kernel} made no \
                     progress before the watchdog deadline"
                )
            }
            ExecError::Cancelled => {
                write!(f, "worker exited on pool cancellation during teardown")
            }
            ExecError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "supervised execution failed after {attempts} threaded \
                     attempt(s); last fault: {last}"
                )
            }
            ExecError::SlabCorrupt { kernel, step } => {
                write!(
                    f,
                    "slab integrity violation: kernel {kernel} received a slab \
                     for iteration {} statement {} whose checksum or sequence \
                     number does not match its payload",
                    step.0, step.1
                )
            }
            ExecError::NumericDivergence {
                kernel,
                iteration,
                cell,
                value,
            } => {
                write!(
                    f,
                    "numerical divergence: kernel {kernel} produced {value} at \
                     cell {cell:?} after {iteration} completed iteration(s)"
                )
            }
            ExecError::DeadlineExceeded { completed } => {
                write!(
                    f,
                    "run deadline exceeded after {completed} completed iteration(s)"
                )
            }
            ExecError::JobCancelled { completed } => {
                write!(f, "job cancelled after {completed} completed iteration(s)")
            }
            ExecError::JobStalled { completed, resumes } => {
                write!(
                    f,
                    "job stalled: no progress heartbeat within the watchdog \
                     timeout after {completed} completed iteration(s) and \
                     {resumes} auto-resume(s)"
                )
            }
            ExecError::CheckpointMismatch { detail } => {
                write!(f, "no resumable checkpoint generation: {detail}")
            }
        }
    }
}

// Structured JSON shape for `RunReport` serialization (`--report-json`):
// a stable `kind` tag plus the human-readable message — job-history
// consumers match on the tag without re-parsing diagnostics.
impl serde::Serialize for ExecError {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "kind".to_string(),
                serde::Value::Str(self.kind().to_string()),
            ),
            ("message".to_string(), serde::Value::Str(self.to_string())),
        ])
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Lang(e) => Some(e),
            ExecError::Grid(e) => Some(e),
            ExecError::RetriesExhausted { last, .. } => Some(&**last),
            _ => None,
        }
    }
}

impl From<LangError> for ExecError {
    fn from(e: LangError) -> Self {
        ExecError::Lang(e)
    }
}

impl From<GridError> for ExecError {
    fn from(e: GridError) -> Self {
        ExecError::Grid(e)
    }
}

impl ExecError {
    /// Convenience constructor for configuration errors.
    pub fn config(detail: impl Into<String>) -> Self {
        ExecError::BadConfiguration {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = ExecError::from(GridError::EmptyExtent);
        assert!(e.source().is_some());
        let d = ExecError::DiagonalAccess {
            statement: "A".into(),
        };
        assert!(d.to_string().contains("diagonal"));
        assert!(d.source().is_none());
        assert!(ExecError::config("x").to_string().contains('x'));
        let stall = ExecError::PipeStall { kernel: 3 };
        assert!(stall.to_string().contains("kernel 3"));
        assert!(stall.source().is_none());
    }

    #[test]
    fn retries_exhausted_chains_to_the_last_fault() {
        use std::error::Error;
        let e = ExecError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ExecError::PipeStall { kernel: 1 }),
        };
        assert!(e.to_string().contains("3 threaded attempt"));
        assert!(e.to_string().contains("kernel 1"));
        let src = e.source().expect("chained source");
        assert!(src.to_string().contains("stalled"));
        assert!(ExecError::Cancelled.to_string().contains("cancellation"));
        assert!(ExecError::Cancelled.source().is_none());
    }

    #[test]
    fn integrity_errors_display_their_coordinates() {
        use std::error::Error;
        let c = ExecError::SlabCorrupt {
            kernel: 2,
            step: (5, 1),
        };
        let msg = c.to_string();
        assert!(msg.contains("kernel 2"));
        assert!(msg.contains("iteration 5"));
        assert!(msg.contains("statement 1"));
        assert!(c.source().is_none());

        let d = ExecError::NumericDivergence {
            kernel: 1,
            iteration: 3,
            cell: vec![4, 7],
            value: f64::NAN,
        };
        let msg = d.to_string();
        assert!(msg.contains("kernel 1"));
        assert!(msg.contains("[4, 7]"));
        assert!(msg.contains("NaN"));
        assert!(msg.contains("3 completed"));
        assert!(d.source().is_none());

        let t = ExecError::DeadlineExceeded { completed: 9 };
        assert!(t.to_string().contains("deadline"));
        assert!(t.to_string().contains('9'));
        assert!(t.source().is_none());
    }

    #[test]
    fn job_stalled_reports_its_budget() {
        use std::error::Error;
        let e = ExecError::JobStalled {
            completed: 12,
            resumes: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("stalled"));
        assert!(msg.contains("12 completed"));
        assert!(msg.contains("2 auto-resume"));
        assert!(e.source().is_none());
        let json = serde_json::to_string(&e).expect("serialize");
        assert!(json.contains("\"kind\":\"JobStalled\""), "{json}");
    }

    #[test]
    fn checkpoint_mismatch_carries_its_diagnostics() {
        use std::error::Error;
        let e = ExecError::CheckpointMismatch {
            detail: "generation 3: digest mismatch".into(),
        };
        assert!(e.to_string().contains("generation 3"));
        assert!(e.source().is_none());
    }

    #[test]
    fn errors_serialize_with_a_stable_kind_tag() {
        let json = serde_json::to_string(&ExecError::DeadlineExceeded { completed: 4 })
            .expect("serialize");
        assert!(json.contains("\"kind\":\"DeadlineExceeded\""), "{json}");
        assert!(json.contains("4 completed"), "{json}");
        let json = serde_json::to_string(&ExecError::CheckpointMismatch { detail: "x".into() })
            .expect("serialize");
        assert!(json.contains("CheckpointMismatch"), "{json}");
    }
}
