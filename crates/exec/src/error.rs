use std::fmt;

use stencilcl_grid::GridError;
use stencilcl_lang::LangError;

/// Errors produced by the functional executors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// An underlying language/interpreter error.
    Lang(LangError),
    /// An underlying geometry error.
    Grid(GridError),
    /// The stencil reads diagonal offsets, which face-only pipe exchange
    /// cannot serve (see the crate-level limitations).
    DiagonalAccess {
        /// The offending statement's target grid.
        statement: String,
    },
    /// The design/partition is inconsistent with the program (e.g. baseline
    /// executor asked to run a pipe partition).
    BadConfiguration {
        /// Human-readable description.
        detail: String,
    },
    /// A worker thread of the threaded executor panicked.
    WorkerPanic {
        /// Kernel id of the failed worker.
        kernel: usize,
    },
    /// The threaded executor's watchdog saw no progress: a worker failed to
    /// report its pass within the deadline, indicating a wedged pipe
    /// exchange. The pool is then cancelled cooperatively and joined, so
    /// the stall does not leak worker threads.
    PipeStall {
        /// Kernel id of the first worker that failed to report.
        kernel: usize,
    },
    /// A worker exited because its pool was cancelled during teardown.
    /// Never the root cause of a failure — the error that triggered the
    /// teardown is reported instead.
    Cancelled,
    /// Supervised execution spent its whole retry budget on transient
    /// faults and was configured without a sequential fallback.
    RetriesExhausted {
        /// Threaded attempts made (first attempt plus retries).
        attempts: u32,
        /// The classified fault of the final attempt (also available via
        /// [`std::error::Error::source`]).
        last: Box<ExecError>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(e) => write!(f, "language error: {e}"),
            ExecError::Grid(e) => write!(f, "geometry error: {e}"),
            ExecError::DiagonalAccess { statement } => write!(
                f,
                "statement updating `{statement}` reads diagonal offsets; \
                 pipe-based execution exchanges face slabs only"
            ),
            ExecError::BadConfiguration { detail } => write!(f, "bad configuration: {detail}"),
            ExecError::WorkerPanic { kernel } => {
                write!(f, "worker thread for kernel {kernel} panicked")
            }
            ExecError::PipeStall { kernel } => {
                write!(
                    f,
                    "pipe executor stalled: worker for kernel {kernel} made no \
                     progress before the watchdog deadline"
                )
            }
            ExecError::Cancelled => {
                write!(f, "worker exited on pool cancellation during teardown")
            }
            ExecError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "supervised execution failed after {attempts} threaded \
                     attempt(s); last fault: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Lang(e) => Some(e),
            ExecError::Grid(e) => Some(e),
            ExecError::RetriesExhausted { last, .. } => Some(&**last),
            _ => None,
        }
    }
}

impl From<LangError> for ExecError {
    fn from(e: LangError) -> Self {
        ExecError::Lang(e)
    }
}

impl From<GridError> for ExecError {
    fn from(e: GridError) -> Self {
        ExecError::Grid(e)
    }
}

impl ExecError {
    /// Convenience constructor for configuration errors.
    pub fn config(detail: impl Into<String>) -> Self {
        ExecError::BadConfiguration {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = ExecError::from(GridError::EmptyExtent);
        assert!(e.source().is_some());
        let d = ExecError::DiagonalAccess {
            statement: "A".into(),
        };
        assert!(d.to_string().contains("diagonal"));
        assert!(d.source().is_none());
        assert!(ExecError::config("x").to_string().contains('x'));
        let stall = ExecError::PipeStall { kernel: 3 };
        assert!(stall.to_string().contains("kernel 3"));
        assert!(stall.source().is_none());
    }

    #[test]
    fn retries_exhausted_chains_to_the_last_fault() {
        use std::error::Error;
        let e = ExecError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ExecError::PipeStall { kernel: 1 }),
        };
        assert!(e.to_string().contains("3 threaded attempt"));
        assert!(e.to_string().contains("kernel 1"));
        let src = e.source().expect("chained source");
        assert!(src.to_string().contains("stalled"));
        assert!(ExecError::Cancelled.to_string().contains("cancellation"));
        assert!(ExecError::Cancelled.source().is_none());
    }
}
