use std::fmt;

use stencilcl_grid::GridError;
use stencilcl_lang::LangError;

/// Errors produced by the functional executors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// An underlying language/interpreter error.
    Lang(LangError),
    /// An underlying geometry error.
    Grid(GridError),
    /// The stencil reads diagonal offsets, which face-only pipe exchange
    /// cannot serve (see the crate-level limitations).
    DiagonalAccess {
        /// The offending statement's target grid.
        statement: String,
    },
    /// The design/partition is inconsistent with the program (e.g. baseline
    /// executor asked to run a pipe partition).
    BadConfiguration {
        /// Human-readable description.
        detail: String,
    },
    /// A worker thread of the threaded executor panicked.
    WorkerPanic {
        /// Kernel id of the failed worker.
        kernel: usize,
    },
    /// The threaded executor's watchdog saw no progress: a worker failed to
    /// report its pass within the deadline, indicating a wedged pipe
    /// exchange. The stalled workers are abandoned (their threads leak
    /// until process exit) rather than blocking the caller forever.
    PipeStall {
        /// Kernel id of the first worker that failed to report.
        kernel: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(e) => write!(f, "language error: {e}"),
            ExecError::Grid(e) => write!(f, "geometry error: {e}"),
            ExecError::DiagonalAccess { statement } => write!(
                f,
                "statement updating `{statement}` reads diagonal offsets; \
                 pipe-based execution exchanges face slabs only"
            ),
            ExecError::BadConfiguration { detail } => write!(f, "bad configuration: {detail}"),
            ExecError::WorkerPanic { kernel } => {
                write!(f, "worker thread for kernel {kernel} panicked")
            }
            ExecError::PipeStall { kernel } => {
                write!(
                    f,
                    "pipe executor stalled: worker for kernel {kernel} made no \
                     progress before the watchdog deadline"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Lang(e) => Some(e),
            ExecError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for ExecError {
    fn from(e: LangError) -> Self {
        ExecError::Lang(e)
    }
}

impl From<GridError> for ExecError {
    fn from(e: GridError) -> Self {
        ExecError::Grid(e)
    }
}

impl ExecError {
    /// Convenience constructor for configuration errors.
    pub fn config(detail: impl Into<String>) -> Self {
        ExecError::BadConfiguration {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = ExecError::from(GridError::EmptyExtent);
        assert!(e.source().is_some());
        let d = ExecError::DiagonalAccess {
            statement: "A".into(),
        };
        assert!(d.to_string().contains("diagonal"));
        assert!(d.source().is_none());
        assert!(ExecError::config("x").to_string().contains('x'));
        let stall = ExecError::PipeStall { kernel: 3 };
        assert!(stall.to_string().contains("kernel 3"));
        assert!(stall.source().is_none());
    }
}
