//! Per-run executor options: engine selection, supervision policy, and the
//! telemetry sink — all decided **at plan time**, before any worker spawns.
//!
//! Environment variables are only the outermost default (parsed once per
//! process by `stencilcl_telemetry::EnvConfig`); anything driving executors
//! programmatically — the bench A/B harness, tests, the CLI — passes an
//! explicit [`ExecOptions`] instead of mutating process env.

use std::sync::Arc;

use stencilcl_telemetry::{EnvConfig, Recorder};

use crate::faults::FaultPlan;
use crate::integrity::HealthPolicy;
use crate::jobs::{CancelHandle, Progress};
use crate::persist::CheckpointPolicy;
use crate::supervise::ExecPolicy;

/// Which statement evaluator a run uses. Both are bit-exact; see the
/// crate-level docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Flat bytecode kernels compiled once per (region, kernel) — the
    /// default.
    #[default]
    Compiled,
    /// The tree-walking AST interpreter — the differential-test oracle.
    Interpreted,
}

impl EngineKind {
    /// The process default: [`EngineKind::Interpreted`] when
    /// `STENCILCL_INTERPRET` is truthy (non-empty and not `"0"`), read once
    /// per process.
    pub fn from_env() -> EngineKind {
        if EnvConfig::get().interpret {
            EngineKind::Interpreted
        } else {
            EngineKind::Compiled
        }
    }
}

/// Everything an executor run can be configured with. Build with the
/// chained setters:
///
/// ```
/// use stencilcl_exec::{EngineKind, ExecOptions};
/// use stencilcl_telemetry::Recorder;
///
/// let rec = Recorder::new();
/// let opts = ExecOptions::new()
///     .engine(EngineKind::Compiled)
///     .trace(rec.clone());
/// assert!(opts.trace.is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Statement evaluator ([`EngineKind::from_env`] default comes via
    /// [`ExecOptions::from_env`]; plain `default()` is the compiled
    /// engine).
    pub engine: EngineKind,
    /// Deadlines and retry limits for the threaded/supervised executors.
    pub policy: ExecPolicy,
    /// Telemetry sink: `Some(recorder)` records spans and counters into it;
    /// `None` runs with the zero-cost disabled sink. The choice happens
    /// here — at plan time — so the executors' hot loops monomorphize
    /// against one sink type and pay nothing when tracing is off.
    pub trace: Option<Recorder>,
    /// Numerical-health watchdog: scans the updated grids at every
    /// fused-block barrier for NaN/Inf/out-of-bound values. Disarmed by
    /// default.
    pub health: HealthPolicy,
    /// Seal every boundary slab with an FNV-1a checksum + sequence number
    /// at send and verify at splice, turning silent payload corruption
    /// into the retryable
    /// [`ExecError::SlabCorrupt`](crate::ExecError::SlabCorrupt). Off by
    /// default (zero cost when off — the checksum is never computed).
    pub integrity: bool,
    /// Lane width of the compiled vectorized tape walk: `Some(1)` forces
    /// the scalar walk, `Some(w)` a `w`-lane sweep, `None` defers to
    /// `STENCILCL_LANES` / the compiler default. Every width is bit-exact.
    pub lanes: Option<usize>,
    /// Durable-checkpoint persistence: when armed with a directory, every
    /// k-th fused-block barrier seals a crash-safe generation that
    /// [`resume_supervised`](crate::resume_supervised) can restart from.
    /// Disarmed by default (zero cost when off).
    pub checkpoint: CheckpointPolicy,
    /// External cooperative cancellation for submitted jobs: checked at
    /// the same points as the deadline, fires as the permanent
    /// [`ExecError::JobCancelled`](crate::ExecError::JobCancelled). `None`
    /// (the default) costs nothing.
    pub cancel: Option<CancelHandle>,
    /// Barrier-granularity progress callback, invoked with the committed
    /// iteration count each time a fused-block barrier lands — the feed
    /// behind the service's streamed job events. `None` by default.
    pub progress: Option<Progress>,
    /// Deterministic fault schedule riding with the job into
    /// [`ExecPool`](crate::ExecPool) runners — the chaos-testing seam for
    /// job-level faults (runner panics, silent stalls). Empty by default;
    /// without the `fault-injection` feature this is a zero-sized no-op.
    pub faults: Arc<FaultPlan>,
}

impl ExecOptions {
    /// Options with library defaults: compiled engine, default policy, no
    /// tracing.
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Options seeded from the process environment (parsed once):
    /// `STENCILCL_INTERPRET` selects the engine, `STENCILCL_WATCHDOG_MS` /
    /// `STENCILCL_DRAIN_MS` / `STENCILCL_MAX_RETRIES` /
    /// `STENCILCL_DEADLINE_MS` override the policy, `STENCILCL_TRACE` arms
    /// a fresh [`Recorder`], `STENCILCL_HEALTH_BOUND` /
    /// `STENCILCL_HEALTH_STRIDE` arm the health watchdog, and
    /// `STENCILCL_INTEGRITY` arms slab checksums.
    pub fn from_env() -> ExecOptions {
        ExecOptions::from_config(EnvConfig::get())
    }

    /// Options seeded from an explicit [`EnvConfig`] — the testable seam
    /// behind [`ExecOptions::from_env`]. The process snapshot is frozen on
    /// first read, so callers layering CLI flags on top (the `stencilcl`
    /// binary) build from the snapshot here and then overwrite fields from
    /// their flags: a flag always beats the frozen env.
    pub fn from_config(cfg: &EnvConfig) -> ExecOptions {
        let mut health = match cfg.health_bound {
            Some(bound) => HealthPolicy::bounded(bound),
            None => HealthPolicy::default(),
        };
        if let Some(stride) = cfg.health_stride {
            health = health.stride(stride);
        }
        ExecOptions {
            engine: if cfg.interpret {
                EngineKind::Interpreted
            } else {
                EngineKind::Compiled
            },
            policy: ExecPolicy::from_config(cfg),
            trace: cfg.trace.then(Recorder::new),
            health,
            integrity: cfg.integrity,
            lanes: cfg.lanes,
            checkpoint: CheckpointPolicy::from_config(cfg),
            cancel: None,
            progress: None,
            faults: Arc::new(FaultPlan::new()),
        }
    }

    /// Replaces the engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> ExecOptions {
        self.engine = engine;
        self
    }

    /// Replaces the supervision policy.
    #[must_use]
    pub fn policy(mut self, policy: ExecPolicy) -> ExecOptions {
        self.policy = policy;
        self
    }

    /// Arms span/counter recording into `recorder` (keep a clone to call
    /// `finish()` afterwards).
    #[must_use]
    pub fn trace(mut self, recorder: Recorder) -> ExecOptions {
        self.trace = Some(recorder);
        self
    }

    /// Replaces the numerical-health policy.
    #[must_use]
    pub fn health(mut self, health: HealthPolicy) -> ExecOptions {
        self.health = health;
        self
    }

    /// Arms (or disarms) slab checksum sealing and verification.
    #[must_use]
    pub fn integrity(mut self, on: bool) -> ExecOptions {
        self.integrity = on;
        self
    }

    /// Sets the compiled tape-walk lane width (`1` = scalar; bit-exact at
    /// every width).
    #[must_use]
    pub fn lanes(mut self, lanes: usize) -> ExecOptions {
        self.lanes = Some(lanes);
        self
    }

    /// Replaces the durable-checkpoint policy.
    #[must_use]
    pub fn checkpoint(mut self, checkpoint: CheckpointPolicy) -> ExecOptions {
        self.checkpoint = checkpoint;
        self
    }

    /// Attaches an external cancellation handle (keep a clone to fire it).
    #[must_use]
    pub fn cancel(mut self, handle: CancelHandle) -> ExecOptions {
        self.cancel = Some(handle);
        self
    }

    /// Attaches a barrier-granularity progress callback.
    #[must_use]
    pub fn progress(mut self, progress: Progress) -> ExecOptions {
        self.progress = Some(progress);
        self
    }

    /// Attaches a deterministic fault schedule for pooled runs.
    #[must_use]
    pub fn faults(mut self, faults: Arc<FaultPlan>) -> ExecOptions {
        self.faults = faults;
        self
    }

    /// The run-limits envelope for one run, with the deadline clock
    /// anchored at this call.
    pub(crate) fn limits(&self) -> crate::integrity::RunLimits {
        crate::integrity::RunLimits::start(self.policy.deadline, self.health, self.integrity)
            .with_controls(self.cancel.clone(), self.progress.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_compiled_untraced() {
        let opts = ExecOptions::new();
        assert_eq!(opts.engine, EngineKind::Compiled);
        assert_eq!(opts.policy, ExecPolicy::default());
        assert!(opts.trace.is_none());
        assert!(!opts.health.enabled());
        assert!(!opts.integrity);
        assert!(!opts.limits().any_active());
    }

    #[test]
    fn health_and_integrity_setters_chain() {
        let opts = ExecOptions::new()
            .health(HealthPolicy::bounded(1e9).stride(3))
            .integrity(true);
        assert!(opts.health.enabled());
        assert_eq!(opts.health.stride, 3);
        assert!(opts.integrity);
        assert!(opts.limits().any_active());
    }

    #[test]
    fn from_config_maps_every_knob() {
        let (cfg, warnings) = EnvConfig::parse(|var| {
            match var {
                "STENCILCL_INTERPRET" => Some("1"),
                "STENCILCL_DEADLINE_MS" => Some("1500"),
                "STENCILCL_HEALTH_BOUND" => Some("1e9"),
                "STENCILCL_HEALTH_STRIDE" => Some("5"),
                "STENCILCL_INTEGRITY" => Some("1"),
                "STENCILCL_LANES" => Some("4"),
                "STENCILCL_TILE" => Some("32"),
                "STENCILCL_BLOCK_DEPTH" => Some("3"),
                "STENCILCL_THREADS" => Some("2"),
                "STENCILCL_CKPT_DIR" => Some("/tmp/stencilcl-ckpt"),
                "STENCILCL_CKPT_EVERY" => Some("6"),
                _ => None,
            }
            .map(String::from)
        });
        assert!(warnings.is_empty());
        let opts = ExecOptions::from_config(&cfg);
        assert_eq!(opts.engine, EngineKind::Interpreted);
        assert_eq!(
            opts.policy.deadline,
            Some(std::time::Duration::from_millis(1500))
        );
        assert!(opts.health.enabled());
        assert_eq!(opts.health.stride, 5);
        assert!(opts.integrity);
        assert_eq!(opts.lanes, Some(4));
        assert_eq!(opts.policy.tile, Some(32));
        assert_eq!(opts.policy.block_depth, Some(3));
        assert_eq!(opts.policy.threads, Some(2));
        assert!(opts.checkpoint.enabled());
        assert_eq!(
            opts.checkpoint.dir.as_deref(),
            Some(std::path::Path::new("/tmp/stencilcl-ckpt"))
        );
        assert_eq!(opts.checkpoint.every_barriers, 6);
    }

    #[test]
    fn checkpointing_is_off_by_default_and_chains() {
        let opts = ExecOptions::new();
        assert!(!opts.checkpoint.enabled());
        let opts = opts.checkpoint(CheckpointPolicy::at("/tmp/x").every_barriers(4));
        assert!(opts.checkpoint.enabled());
        assert_eq!(opts.checkpoint.every_barriers, 4);
        assert_eq!(opts.checkpoint.keep_generations, 3);
    }

    #[test]
    fn setters_chain() {
        let rec = Recorder::with_capacity(4);
        let opts = ExecOptions::new()
            .engine(EngineKind::Interpreted)
            .trace(rec);
        assert_eq!(opts.engine, EngineKind::Interpreted);
        assert!(opts.trace.is_some());
    }
}
