use stencilcl_grid::{Extent, Grid, Point, Rect};
use stencilcl_lang::{GridState, Program};

use crate::ExecError;

/// Extracts the window `rect` (already clipped to the grid) of every array of
/// `state` into a fresh local [`GridState`] over `local_program` — the
/// functional analogue of the burst read into a kernel's BRAM buffers.
///
/// `local_program` must be `program.with_extent(window extent)`.
///
/// # Errors
///
/// Returns [`ExecError`] when the window is empty or the programs disagree.
pub fn extract_window(
    state: &GridState,
    program: &Program,
    local_program: &Program,
    rect: &Rect,
) -> Result<GridState, ExecError> {
    if rect.is_empty() {
        return Err(ExecError::config(format!("empty window {rect}")));
    }
    let lens: Vec<usize> = (0..rect.dim()).map(|d| rect.len(d) as usize).collect();
    let extent = Extent::new(&lens).map_err(ExecError::from)?;
    if local_program.extent() != extent {
        return Err(ExecError::config(format!(
            "local program extent {} does not match window {}",
            local_program.extent(),
            extent
        )));
    }
    let mut grids = std::collections::BTreeMap::new();
    for decl in &program.grids {
        let src = state.grid(&decl.name)?;
        let values = src.read_window(rect)?;
        grids.insert(decl.name.clone(), Grid::from_vec(extent, values)?);
    }
    GridState::from_grids(local_program, grids).map_err(ExecError::from)
}

/// Writes the `updated` arrays of `local` (a window rooted at `origin`) back
/// into `state`, but only the cells inside `target` — the burst write of a
/// kernel's tile. Rows are copied slice to slice, with no intermediate
/// vector.
///
/// # Errors
///
/// Returns [`ExecError`] when geometry or grid names disagree.
pub fn write_back(
    state: &mut GridState,
    local: &GridState,
    updated: &[&str],
    origin: &Point,
    target: &Rect,
) -> Result<(), ExecError> {
    let local_target = target.translate(&-*origin)?;
    for name in updated {
        let src = local.grid(name)?;
        state
            .grid_mut(name)?
            .copy_window_from(target, src, &local_target)?;
    }
    Ok(())
}

/// Decomposes `window ∖ tile` into at most `2 · dim` disjoint rects — the
/// halo ring a persistent tile window must refresh from the global grid
/// between fused blocks (the tile interior keeps the values the kernel
/// itself computed and wrote back).
///
/// # Errors
///
/// Returns [`ExecError::BadConfiguration`] unless `tile` lies inside
/// `window`.
pub fn halo_ring(window: &Rect, tile: &Rect) -> Result<Vec<Rect>, ExecError> {
    if !window.contains_rect(tile) {
        return Err(ExecError::config(format!(
            "tile {tile} escapes its window {window}"
        )));
    }
    let mut ring = Vec::new();
    let mut core = *window;
    for d in 0..window.dim() {
        if core.lo().coord(d) < tile.lo().coord(d) {
            let slab = Rect::new(core.lo(), core.hi().with_coord(d, tile.lo().coord(d)))?;
            ring.push(slab);
            core = Rect::new(core.lo().with_coord(d, tile.lo().coord(d)), core.hi())?;
        }
        if core.hi().coord(d) > tile.hi().coord(d) {
            let slab = Rect::new(core.lo().with_coord(d, tile.hi().coord(d)), core.hi())?;
            ring.push(slab);
            core = Rect::new(core.lo(), core.hi().with_coord(d, tile.hi().coord(d)))?;
        }
    }
    Ok(ring)
}

/// Refreshes the `names` arrays of a persistent local window (rooted at
/// `origin`) over the absolute `ring` rects from the global state — the
/// incremental replacement for re-extracting the whole window every block.
/// Rows are copied slice to slice, with no intermediate vector.
///
/// # Errors
///
/// Returns [`ExecError`] when a ring rect falls outside the local window
/// or a named grid is missing.
pub fn refresh_ring(
    local: &mut GridState,
    global: &GridState,
    ring: &[Rect],
    origin: &Point,
    names: &[&str],
) -> Result<(), ExecError> {
    for rect in ring {
        let local_rect = rect.translate(&-*origin)?;
        for name in names {
            let src = global.grid(name)?;
            local
                .grid_mut(name)?
                .copy_window_from(&local_rect, src, rect)?;
        }
    }
    Ok(())
}

/// Copies array `name` over the absolute region `overlap` from one local
/// window (rooted at `src_origin`) into another (rooted at `dst_origin`) —
/// one pipe transfer of a boundary slab.
///
/// # Errors
///
/// Returns [`ExecError`] when the overlap falls outside either window.
pub fn copy_slab(
    src: &GridState,
    src_origin: &Point,
    dst: &mut GridState,
    dst_origin: &Point,
    name: &str,
    overlap: &Rect,
) -> Result<(), ExecError> {
    if overlap.is_empty() {
        return Ok(());
    }
    let src_rect = overlap.translate(&-*src_origin)?;
    let values = src.grid(name)?.read_window(&src_rect)?;
    if values.len() as u64 != overlap.volume() {
        return Err(ExecError::config(format!(
            "slab {overlap} extends outside the source window"
        )));
    }
    let dst_rect = overlap.translate(&-*dst_origin)?;
    dst.grid_mut(name)?.write_window(&dst_rect, &values)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_lang::parse;

    fn program(n: usize) -> Program {
        parse(&format!(
            "stencil w {{ grid A[{n}][{n}] : f32; grid B[{n}][{n}] : f32 read_only;
             iterations 1; A[i][j] = A[i][j] + B[i][j]; }}"
        ))
        .unwrap()
    }

    #[test]
    fn extract_and_write_back_roundtrip() {
        let p = program(8);
        let state = GridState::new(&p, |name, pt| {
            let tag = if name == "A" { 100.0 } else { 0.0 };
            tag + (pt.coord(0) * 8 + pt.coord(1)) as f64
        });
        let rect = Rect::new(Point::new2(2, 2), Point::new2(6, 6)).unwrap();
        let local_p = p.with_extent(Extent::new2(4, 4));
        let local = extract_window(&state, &p, &local_p, &rect).unwrap();
        assert_eq!(
            *local.grid("A").unwrap().get(&Point::new2(0, 0)).unwrap(),
            100.0 + 18.0
        );
        // Modify the local window, then write a sub-target back.
        let mut local = local;
        local
            .grid_mut("A")
            .unwrap()
            .set(&Point::new2(1, 1), -1.0)
            .unwrap();
        let mut state2 = state.clone();
        let target = Rect::new(Point::new2(3, 3), Point::new2(5, 5)).unwrap();
        write_back(&mut state2, &local, &["A"], &rect.lo(), &target).unwrap();
        assert_eq!(
            *state2.grid("A").unwrap().get(&Point::new2(3, 3)).unwrap(),
            -1.0
        );
        // Outside the target: untouched.
        assert_eq!(
            *state2.grid("A").unwrap().get(&Point::new2(2, 2)).unwrap(),
            100.0 + 18.0
        );
        // Read-only array untouched everywhere.
        assert_eq!(state.grid("B").unwrap(), state2.grid("B").unwrap());
    }

    #[test]
    fn extract_rejects_mismatched_local_extent() {
        let p = program(8);
        let state = GridState::uniform(&p, 0.0);
        let rect = Rect::new(Point::new2(0, 0), Point::new2(4, 4)).unwrap();
        let wrong = p.with_extent(Extent::new2(5, 5));
        assert!(extract_window(&state, &p, &wrong, &rect).is_err());
    }

    #[test]
    fn copy_slab_moves_overlap_between_windows() {
        let p = program(8);
        let local_p = p.with_extent(Extent::new2(4, 4));
        let state = GridState::new(&p, |_, pt| (pt.coord(0) * 8 + pt.coord(1)) as f64);
        // Window 1 at (0,0), window 2 at (0,3) (overlapping column 3).
        let r1 = Rect::new(Point::new2(0, 0), Point::new2(4, 4)).unwrap();
        let r2 = Rect::new(Point::new2(0, 3), Point::new2(4, 7)).unwrap();
        let w1 = extract_window(&state, &p, &local_p, &r1).unwrap();
        let mut w2 = extract_window(&state, &p, &local_p, &r2).unwrap();
        // Zero w2's copy of column 3, then restore it from w1.
        for x in 0..4 {
            w2.grid_mut("A")
                .unwrap()
                .set(&Point::new2(x, 0), 0.0)
                .unwrap();
        }
        let overlap = Rect::new(Point::new2(0, 3), Point::new2(4, 4)).unwrap();
        copy_slab(&w1, &r1.lo(), &mut w2, &r2.lo(), "A", &overlap).unwrap();
        assert_eq!(
            *w2.grid("A").unwrap().get(&Point::new2(2, 0)).unwrap(),
            19.0
        );
    }

    #[test]
    fn copy_slab_rejects_out_of_window_overlap() {
        let p = program(8);
        let local_p = p.with_extent(Extent::new2(4, 4));
        let state = GridState::uniform(&p, 0.0);
        let r1 = Rect::new(Point::new2(0, 0), Point::new2(4, 4)).unwrap();
        let w1 = extract_window(&state, &p, &local_p, &r1).unwrap();
        let mut w2 = w1.clone();
        let outside = Rect::new(Point::new2(0, 4), Point::new2(4, 5)).unwrap();
        assert!(copy_slab(&w1, &r1.lo(), &mut w2, &r1.lo(), "A", &outside).is_err());
    }

    #[test]
    fn halo_ring_partitions_window_minus_tile() {
        let window = Rect::new(Point::new2(2, 1), Point::new2(10, 9)).unwrap();
        let tile = Rect::new(Point::new2(4, 3), Point::new2(8, 7)).unwrap();
        let ring = halo_ring(&window, &tile).unwrap();
        let ring_volume: u64 = ring.iter().map(Rect::volume).sum();
        assert_eq!(ring_volume + tile.volume(), window.volume());
        for (a, ra) in ring.iter().enumerate() {
            assert!(ra.intersect(&tile).unwrap().is_empty());
            for rb in &ring[a + 1..] {
                assert!(ra.intersect(rb).unwrap().is_empty(), "{ra} overlaps {rb}");
            }
        }
    }

    #[test]
    fn halo_ring_is_empty_when_tile_fills_window() {
        let r = Rect::new(Point::new2(0, 0), Point::new2(4, 4)).unwrap();
        assert!(halo_ring(&r, &r).unwrap().is_empty());
        let outside = Rect::new(Point::new2(0, 0), Point::new2(5, 4)).unwrap();
        assert!(halo_ring(&r, &outside).is_err());
    }

    #[test]
    fn refresh_ring_restores_stale_halo_only() {
        let p = program(8);
        let local_p = p.with_extent(Extent::new2(4, 4));
        let global = GridState::new(&p, |_, pt| (pt.coord(0) * 8 + pt.coord(1)) as f64);
        let window = Rect::new(Point::new2(2, 2), Point::new2(6, 6)).unwrap();
        let tile = Rect::new(Point::new2(3, 3), Point::new2(5, 5)).unwrap();
        let mut local = extract_window(&global, &p, &local_p, &window).unwrap();
        // Scribble over the whole local window, then refresh the ring.
        for x in 0..4 {
            for y in 0..4 {
                local
                    .grid_mut("A")
                    .unwrap()
                    .set(&Point::new2(x, y), -1.0)
                    .unwrap();
            }
        }
        let ring = halo_ring(&window, &tile).unwrap();
        refresh_ring(&mut local, &global, &ring, &window.lo(), &["A"]).unwrap();
        // Ring cells restored from the global grid.
        assert_eq!(
            *local.grid("A").unwrap().get(&Point::new2(0, 0)).unwrap(),
            18.0
        );
        // Tile interior untouched by the refresh.
        assert_eq!(
            *local.grid("A").unwrap().get(&Point::new2(1, 1)).unwrap(),
            -1.0
        );
    }

    #[test]
    fn empty_slab_is_noop() {
        let p = program(8);
        let local_p = p.with_extent(Extent::new2(4, 4));
        let state = GridState::uniform(&p, 1.0);
        let r1 = Rect::new(Point::new2(0, 0), Point::new2(4, 4)).unwrap();
        let w1 = extract_window(&state, &p, &local_p, &r1).unwrap();
        let mut w2 = w1.clone();
        let empty = Rect::new(Point::new2(2, 2), Point::new2(2, 4)).unwrap();
        copy_slab(&w1, &r1.lo(), &mut w2, &r1.lo(), "A", &empty).unwrap();
        assert_eq!(w1, w2);
    }
}
