//! Data-plane integrity: slab checksums, the numerical-health watchdog,
//! and cooperative wall-clock deadlines.
//!
//! The pipe-sharing design (§3.1) moves every boundary value through a
//! FIFO, so a silently corrupted slab payload splices straight into a
//! neighbor's halo and produces a bit-wrong grid that nothing downstream
//! detects. This module closes that gap end to end:
//!
//! * **Slab checksums** — every slab is sealed at send time with an
//!   FNV-1a-64 hash over its payload bit patterns, its `(iteration,
//!   statement)` step tag, and a per-channel sequence number; the splice
//!   site recomputes and compares, surfacing any mismatch as the
//!   *transient* [`ExecError::SlabCorrupt`] so the supervisor can retry
//!   from the fused-block-barrier checkpoint.
//! * **Numerical health** — a [`HealthPolicy`] samples the written grids
//!   at every fused-block barrier (strided, to bound overhead) for
//!   NaN/Inf/out-of-bound values and aborts with the *permanent*
//!   [`ExecError::NumericDivergence`], leaving the last healthy barrier in
//!   the output buffer. Deterministic recompute reproduces the same
//!   divergence, so retrying would only waste the budget.
//! * **Deadlines** — an absolute wall-clock cutoff carried in
//!   [`RunLimits`], checked cooperatively at barriers and inside the
//!   10 ms pipe tick, yielding [`ExecError::DeadlineExceeded`] with the
//!   completed-iteration count instead of wedging unbounded.
//!
//! [`ExecError::SlabCorrupt`]: crate::ExecError::SlabCorrupt
//! [`ExecError::NumericDivergence`]: crate::ExecError::NumericDivergence
//! [`ExecError::DeadlineExceeded`]: crate::ExecError::DeadlineExceeded

use std::time::{Duration, Instant};

use stencilcl_grid::Rect;
use stencilcl_lang::GridState;
use stencilcl_telemetry::{Counter, TraceSink};

use crate::error::ExecError;
use crate::jobs::{CancelHandle, Progress};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` word into a running FNV-1a-style hash. Word-wise rather
/// than the spec's byte-wise folding: each XOR-then-multiply-by-odd-prime
/// step is a bijection on `u64`, so corruption of any single word provably
/// changes the digest, and the 8× fewer dependent multiplies keep sealing
/// megabytes of slab payload inside the ≤ 3% overhead budget.
#[inline]
pub(crate) fn fnv1a_u64(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// Word-wise FNV-1a-64 over a byte stream: bytes are folded in 8-byte
/// little-endian chunks (the final partial chunk zero-padded), preceded by
/// the length so streams differing only in trailing zero bytes digest
/// differently. Shared by checkpoint sealing
/// ([`crate::persist`]) and content hashing.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = fnv1a_u64(FNV_OFFSET, bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        hash = fnv1a_u64(
            hash,
            u64::from_le_bytes(c.try_into().expect("8-byte chunk")),
        );
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        hash = fnv1a_u64(hash, u64::from_le_bytes(last));
    }
    hash
}

/// Seals a slab: FNV-1a-64 over the sequence number, the `(iteration,
/// statement)` step tag, and every payload value's IEEE-754 bit pattern
/// (so `-0.0` vs `0.0` and NaN payloads all checksum distinctly).
pub(crate) fn slab_checksum(seq: u64, step: (u64, usize), values: &[f64]) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = fnv1a_u64(hash, seq);
    hash = fnv1a_u64(hash, step.0);
    hash = fnv1a_u64(hash, step.1 as u64);
    for v in values {
        hash = fnv1a_u64(hash, v.to_bits());
    }
    hash
}

/// Recomputes a received slab's checksum against the sequence number the
/// receiver expected and the slab's own step tag.
///
/// Returns [`ExecError::SlabCorrupt`] naming the receiving kernel when the
/// payload, tag, or ordering was corrupted in flight.
pub(crate) fn verify_slab<S: TraceSink>(
    kernel: usize,
    expected_seq: u64,
    step: (u64, usize),
    values: &[f64],
    checksum: u64,
    sink: &S,
) -> Result<(), ExecError> {
    sink.add(Counter::ChecksumsVerified, 1);
    if slab_checksum(expected_seq, step, values) != checksum {
        return Err(ExecError::SlabCorrupt { kernel, step });
    }
    Ok(())
}

/// What the numerical-health watchdog treats as unhealthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum HealthMode {
    /// No scanning; the watchdog is disarmed.
    #[default]
    Off,
    /// Reject NaN and ±Inf only.
    NonFinite,
    /// Reject NaN, ±Inf, and any `|x|` above [`HealthPolicy::bound`].
    Bounded,
}

/// Numerical-health watchdog configuration, set via
/// [`ExecOptions::health`](crate::ExecOptions::health).
///
/// When armed, executors sample the updated grids at every fused-block
/// barrier: every `stride`-th cell in row-major order is tested against
/// [`HealthMode`]. A hit aborts the run with the permanent
/// [`ExecError::NumericDivergence`](crate::ExecError::NumericDivergence)
/// while the output buffer keeps the last healthy barrier.
///
/// The stride bounds overhead: a scan touches `⌈volume / stride⌉` cells
/// per updated grid per barrier, so on an `N²` grid with fused depth `h`
/// the amortized cost is `N² / (stride · h)` samples per iteration —
/// strictly cheaper than the stencil update itself for any `stride ≥ 1`.
/// Divergence in an iterative stencil spreads by the access radius each
/// iteration, so a sparse sample still catches a blow-up within a few
/// barriers of its onset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Sampling stride in row-major cells (≥ 1; 1 = scan everything).
    pub stride: usize,
    /// Magnitude bound for [`HealthMode::Bounded`].
    pub bound: f64,
    /// What counts as unhealthy.
    pub mode: HealthMode,
}

impl Default for HealthPolicy {
    /// Disarmed: no scanning, infinite bound, stride 1.
    fn default() -> Self {
        HealthPolicy {
            stride: 1,
            bound: f64::INFINITY,
            mode: HealthMode::Off,
        }
    }
}

impl HealthPolicy {
    /// Arms the watchdog against NaN and ±Inf.
    pub fn non_finite() -> Self {
        HealthPolicy {
            mode: HealthMode::NonFinite,
            ..HealthPolicy::default()
        }
    }

    /// Arms the watchdog against NaN, ±Inf, and `|x| > bound`.
    pub fn bounded(bound: f64) -> Self {
        HealthPolicy {
            mode: HealthMode::Bounded,
            bound,
            ..HealthPolicy::default()
        }
    }

    /// Sets the sampling stride (clamped to ≥ 1).
    #[must_use]
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Whether any scanning happens at all.
    pub fn enabled(&self) -> bool {
        self.mode != HealthMode::Off
    }

    /// Whether `v` violates this policy.
    #[inline]
    pub fn unhealthy(&self, v: f64) -> bool {
        match self.mode {
            HealthMode::Off => false,
            HealthMode::NonFinite => !v.is_finite(),
            HealthMode::Bounded => !v.is_finite() || v.abs() > self.bound,
        }
    }
}

/// Scans the `updated` grids of `state` under `health`, attributing a hit
/// to the kernel whose tile rect contains the divergent cell (kernel 0
/// when `tiles` is empty, as in the unpartitioned executors).
///
/// `completed` is the number of iterations fully finished *before* the
/// barrier being scanned; it becomes
/// [`ExecError::NumericDivergence::iteration`](crate::ExecError::NumericDivergence).
pub(crate) fn scan_state<S: TraceSink>(
    health: &HealthPolicy,
    state: &GridState,
    updated: &[String],
    tiles: &[(usize, Rect)],
    completed: u64,
    sink: &S,
) -> Result<(), ExecError> {
    if !health.enabled() {
        return Ok(());
    }
    let start = sink.now();
    let stride = health.stride.max(1);
    let mut sampled = 0u64;
    for name in updated {
        let grid = state.grid(name)?;
        let extent = grid.extent();
        let cells = grid.as_slice();
        let mut idx = 0usize;
        while idx < cells.len() {
            let v = cells[idx];
            sampled += 1;
            if health.unhealthy(v) {
                sink.add(Counter::CellsScanned, sampled);
                sink.add(Counter::ScanNs, sink.now().saturating_sub(start));
                let point = extent.delinearize(idx);
                let kernel = tiles
                    .iter()
                    .find(|(_, rect)| rect.contains(&point))
                    .map_or(0, |(k, _)| *k);
                return Err(ExecError::NumericDivergence {
                    kernel,
                    iteration: completed,
                    cell: point.as_slice().to_vec(),
                    value: v,
                });
            }
            idx += stride;
        }
    }
    sink.add(Counter::CellsScanned, sampled);
    sink.add(Counter::ScanNs, sink.now().saturating_sub(start));
    Ok(())
}

/// The per-run integrity envelope handed down to every executor: an
/// absolute deadline (shared across supervised retries), the health
/// policy, whether slabs are sealed/verified, and the external control
/// surface (cancel handle, progress hook) a service run carries. Cloned
/// into worker threads; the handles are `Arc`-backed so clones stay
/// coupled to the submitter's copies.
#[derive(Debug, Clone, Default)]
pub(crate) struct RunLimits {
    /// Absolute wall-clock cutoff, fixed once at run (not attempt) start.
    pub deadline: Option<Instant>,
    /// Numerical-health watchdog configuration.
    pub health: HealthPolicy,
    /// Seal slabs at send and verify at splice.
    pub integrity: bool,
    /// External cooperative cancellation, observed at the same points as
    /// the deadline. Fires as the permanent [`ExecError::JobCancelled`].
    pub cancel: Option<CancelHandle>,
    /// Barrier-granularity progress callback for streamed job events.
    pub progress: Option<Progress>,
}

impl RunLimits {
    /// Everything off — the zero-overhead fast path.
    #[cfg(test)]
    pub fn disabled() -> Self {
        RunLimits::default()
    }

    /// Starts the clock: converts a relative deadline into an absolute
    /// instant anchored at the call site. Call once per *run*, before the
    /// first attempt, so supervised retries share the same budget.
    pub fn start(deadline: Option<Duration>, health: HealthPolicy, integrity: bool) -> Self {
        RunLimits {
            deadline: deadline.map(|d| Instant::now() + d),
            health,
            integrity,
            cancel: None,
            progress: None,
        }
    }

    /// Attaches the external control surface (cancel + progress) a
    /// submitted job carries.
    pub fn with_controls(
        mut self,
        cancel: Option<CancelHandle>,
        progress: Option<Progress>,
    ) -> Self {
        self.cancel = cancel;
        self.progress = progress;
        self
    }

    /// Whether the deadline has elapsed.
    #[inline]
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether an external cancellation has been requested.
    #[inline]
    pub fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelHandle::is_cancelled)
    }

    /// Barrier-granularity cutoff check: errors with the completed
    /// iteration count once an external cancel fired (checked first — a
    /// cancelled job should report cancellation even if its deadline also
    /// lapsed while it drained) or the wall-clock cutoff passed.
    #[inline]
    pub fn check_deadline(&self, completed: u64) -> Result<(), ExecError> {
        if self.cancel_requested() {
            return Err(ExecError::JobCancelled { completed });
        }
        if self.deadline_passed() {
            return Err(ExecError::DeadlineExceeded { completed });
        }
        Ok(())
    }

    /// Reports a committed barrier to the progress hook, if one is armed.
    #[inline]
    pub fn note_progress(&self, completed: u64) {
        if let Some(p) = &self.progress {
            p.notify(completed);
        }
    }

    /// Whether the per-iteration slow path is needed at all (any of the
    /// mechanisms armed).
    pub fn any_active(&self) -> bool {
        self.deadline.is_some() || self.health.enabled() || self.integrity || self.cancel.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::Point;
    use stencilcl_lang::parse;
    use stencilcl_telemetry::Disabled;

    #[test]
    fn byte_digest_is_deterministic_and_length_sensitive() {
        assert_eq!(fnv1a_bytes(b"stencil"), fnv1a_bytes(b"stencil"));
        assert_ne!(fnv1a_bytes(b"stencil"), fnv1a_bytes(b"stencil!"));
        // Trailing zero bytes change the digest despite zero-padded chunks.
        assert_ne!(fnv1a_bytes(&[1, 2, 3]), fnv1a_bytes(&[1, 2, 3, 0]));
        assert_ne!(fnv1a_bytes(&[]), fnv1a_bytes(&[0]));
    }

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        let values = [1.0, -2.5, 0.0];
        let base = slab_checksum(7, (3, 1), &values);
        assert_eq!(base, slab_checksum(7, (3, 1), &values));
        // Any single input perturbation moves the hash.
        assert_ne!(base, slab_checksum(8, (3, 1), &values));
        assert_ne!(base, slab_checksum(7, (4, 1), &values));
        assert_ne!(base, slab_checksum(7, (3, 0), &values));
        assert_ne!(base, slab_checksum(7, (3, 1), &[1.0, -2.5, 1.0]));
        // Bit-pattern hashing distinguishes -0.0 from 0.0.
        assert_ne!(base, slab_checksum(7, (3, 1), &[1.0, -2.5, -0.0]));
    }

    #[test]
    fn single_bit_flip_fails_verification() {
        let mut values = vec![1.0, 2.0, 3.0];
        let sum = slab_checksum(0, (1, 0), &values);
        assert!(verify_slab(4, 0, (1, 0), &values, sum, &Disabled).is_ok());
        values[0] = f64::from_bits(values[0].to_bits() ^ 1);
        let err = verify_slab(4, 0, (1, 0), &values, sum, &Disabled).unwrap_err();
        assert_eq!(
            err,
            ExecError::SlabCorrupt {
                kernel: 4,
                step: (1, 0)
            }
        );
        // A reordered (wrong-sequence) slab also fails even with intact bits.
        values[0] = 1.0;
        assert!(verify_slab(4, 1, (1, 0), &values, sum, &Disabled).is_err());
    }

    #[test]
    fn health_policy_modes_classify_values() {
        let off = HealthPolicy::default();
        assert!(!off.enabled());
        assert!(!off.unhealthy(f64::NAN));
        let nf = HealthPolicy::non_finite();
        assert!(nf.enabled());
        assert!(nf.unhealthy(f64::NAN) && nf.unhealthy(f64::INFINITY));
        assert!(!nf.unhealthy(1e300));
        let bounded = HealthPolicy::bounded(100.0);
        assert!(bounded.unhealthy(100.5) && bounded.unhealthy(-101.0));
        assert!(!bounded.unhealthy(100.0) && !bounded.unhealthy(-99.0));
        assert!(bounded.unhealthy(f64::NEG_INFINITY));
        assert_eq!(HealthPolicy::non_finite().stride(0).stride, 1);
    }

    fn tiny_state(rows: usize, cols: usize) -> (GridState, Vec<String>) {
        let src = format!(
            "stencil tiny {{ grid A[{rows}][{cols}] : f32; iterations 1; A[i][j] = A[i][j]; }}"
        );
        let program = parse(&src).expect("tiny program parses");
        let state = GridState::uniform(&program, 1.0);
        (state, vec!["A".to_string()])
    }

    #[test]
    fn scan_finds_the_first_unhealthy_cell_in_row_major_order() {
        let (mut state, updated) = tiny_state(4, 4);
        let g = state.grid_mut("A").unwrap();
        g.set(&Point::new2(3, 2), f64::NAN).unwrap();
        g.set(&Point::new2(1, 3), f64::INFINITY).unwrap();
        let err = scan_state(
            &HealthPolicy::non_finite(),
            &state,
            &updated,
            &[],
            6,
            &Disabled,
        )
        .unwrap_err();
        match err {
            ExecError::NumericDivergence {
                kernel,
                iteration,
                cell,
                value,
            } => {
                assert_eq!(kernel, 0);
                assert_eq!(iteration, 6);
                assert_eq!(cell, vec![1, 3]); // row-major: (1,3) precedes (3,2)
                assert!(value.is_infinite());
            }
            other => panic!("expected NumericDivergence, got {other:?}"),
        }
    }

    #[test]
    fn scan_attributes_the_owning_tile_kernel() {
        let (mut state, updated) = tiny_state(4, 8);
        state
            .grid_mut("A")
            .unwrap()
            .set(&Point::new2(2, 6), f64::NAN)
            .unwrap();
        let left = Rect::new(Point::new2(0, 0), Point::new2(3, 3)).unwrap();
        let right = Rect::new(Point::new2(0, 4), Point::new2(3, 7)).unwrap();
        let err = scan_state(
            &HealthPolicy::non_finite(),
            &state,
            &updated,
            &[(0, left), (1, right)],
            0,
            &Disabled,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::NumericDivergence { kernel: 1, .. }
        ));
    }

    #[test]
    fn healthy_grids_pass_and_strides_subsample() {
        let (state, updated) = tiny_state(8, 8);
        for stride in [1, 2, 3, 64, 1000] {
            let policy = HealthPolicy::bounded(10.0).stride(stride);
            assert!(scan_state(&policy, &state, &updated, &[], 0, &Disabled).is_ok());
        }
        // A wide stride can legitimately skip an isolated bad cell — that
        // is the documented sampling trade-off.
        let (mut state, updated) = tiny_state(8, 8);
        state
            .grid_mut("A")
            .unwrap()
            .set(&Point::new2(0, 1), f64::NAN)
            .unwrap();
        let sparse = HealthPolicy::non_finite().stride(64);
        assert!(scan_state(&sparse, &state, &updated, &[], 0, &Disabled).is_ok());
        let dense = HealthPolicy::non_finite();
        assert!(scan_state(&dense, &state, &updated, &[], 0, &Disabled).is_err());
    }

    #[test]
    fn run_limits_deadline_fires_only_after_the_cutoff() {
        let off = RunLimits::disabled();
        assert!(!off.any_active());
        assert!(off.check_deadline(0).is_ok());
        let generous = RunLimits::start(
            Some(Duration::from_secs(3600)),
            HealthPolicy::default(),
            false,
        );
        assert!(generous.any_active());
        assert!(generous.check_deadline(5).is_ok());
        let expired = RunLimits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..RunLimits::disabled()
        };
        assert_eq!(
            expired.check_deadline(11),
            Err(ExecError::DeadlineExceeded { completed: 11 })
        );
    }

    #[test]
    fn run_limits_cancel_wins_over_a_lapsed_deadline() {
        let cancel = CancelHandle::new();
        let limits = RunLimits::disabled().with_controls(Some(cancel.clone()), None);
        assert!(limits.any_active());
        assert!(limits.check_deadline(0).is_ok());
        cancel.cancel();
        // Cancel is reported even when the deadline has also lapsed.
        let both = RunLimits {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..limits
        };
        assert_eq!(
            both.check_deadline(7),
            Err(ExecError::JobCancelled { completed: 7 })
        );
    }

    #[test]
    fn run_limits_progress_hook_fires_on_note_progress() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&seen);
        let limits = RunLimits::disabled().with_controls(
            None,
            Some(Progress::new(move |done| {
                sink.store(done, Ordering::SeqCst);
            })),
        );
        limits.note_progress(42);
        assert_eq!(seen.load(Ordering::SeqCst), 42);
        // No hook armed: a no-op, not a panic.
        RunLimits::disabled().note_progress(1);
    }
}
