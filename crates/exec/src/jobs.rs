//! Run-as-submitted-job seam: a persistent pool of job-runner threads the
//! service scheduler owns, plus the external control surface a long-running
//! daemon needs — cooperative cancellation ([`CancelHandle`]) and
//! barrier-granularity progress callbacks ([`Progress`]).
//!
//! Every `run_*` entry point in this crate blocks its caller and tears its
//! workers down when it returns; that is the right shape for a CLI run and
//! the wrong one for a multi-tenant service. [`ExecPool`] inverts the
//! ownership: the pool's runner threads are spawned once, live for the
//! daemon's lifetime, and jobs *enter the supervisor through them* — a
//! submission is one channel send, never a thread spawn. Admission control
//! (queue bounds, tenant quotas) stays with the caller; the pool only
//! bounds *concurrency* to its worker count, running excess submissions in
//! strict FIFO order as runners free up.
//!
//! Cancellation and progress ride inside [`ExecOptions`]
//! ([`ExecOptions::cancel`](crate::ExecOptions), `ExecOptions::progress`)
//! and are observed by every executor at the same cooperative points as the
//! wall-clock deadline: fused-block barriers and the blocking pipe tick. A
//! fired [`CancelHandle`] surfaces as the *permanent*
//! [`ExecError::JobCancelled`] — the supervisor stops at the last
//! consistent barrier (keeping an armed checkpoint store resumable)
//! instead of burning retries on work nobody wants anymore.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use stencilcl_grid::Partition;
use stencilcl_lang::{GridState, Program};

use crate::options::ExecOptions;
use crate::supervise::{run_supervised_full, RunReport};
use crate::ExecError;

/// External cooperative cancellation of one run. Clone freely: every clone
/// observes the same flag. Checked by the executors at fused-block
/// barriers and inside the blocking pipe tick, so a cancelled run drains
/// within one tick and returns [`ExecError::JobCancelled`] with the grid
/// at its last consistent barrier.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// A fresh, un-fired handle.
    pub fn new() -> CancelHandle {
        CancelHandle::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Barrier-granularity progress callback: invoked with the number of
/// iterations fully completed and committed each time a fused-block
/// barrier lands. Called from the run's coordinating thread (never from
/// pipe workers), so implementations may take locks — but they sit on the
/// barrier path and should stay cheap.
#[derive(Clone)]
pub struct Progress(Arc<dyn Fn(u64) + Send + Sync>);

impl Progress {
    /// Wraps a callback.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Progress {
        Progress(Arc::new(f))
    }

    /// Invokes the callback with the committed iteration count.
    pub fn notify(&self, completed: u64) {
        (self.0)(completed);
    }
}

impl fmt::Debug for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Progress(..)")
    }
}

/// One submitted run: everything a pool runner needs, owned.
#[derive(Debug)]
pub struct JobSpec {
    /// The stencil program to run to its own iteration count.
    pub program: Program,
    /// The partition the pipe executors run over.
    pub partition: Partition,
    /// Initial grid state; the outcome returns it advanced.
    pub state: GridState,
    /// Per-job options — engine, policy (deadline!), cancel handle,
    /// progress hook, per-job trace recorder, checkpoint policy.
    pub opts: ExecOptions,
}

/// What a runner does right before starting a job: notify the submitter
/// (schedulers move the job queued → running here).
type OnStart = Box<dyn FnOnce() + Send>;

/// What one pooled job produced: the final (or last-barrier) grid state,
/// the supervisor's attempt history, and the run outcome.
#[derive(Debug)]
pub struct JobOutcome {
    /// Grid state after the run — final on success, the last consistent
    /// barrier on failure or cancellation.
    pub state: GridState,
    /// Attempt history and recovery path.
    pub report: RunReport,
    /// `Ok(())` or the fault that ended the run.
    pub result: Result<(), ExecError>,
}

/// What a runner does after finishing a job: deliver the outcome.
type OnDone = Box<dyn FnOnce(JobOutcome) + Send>;

struct PoolJob {
    spec: Box<JobSpec>,
    on_start: Option<OnStart>,
    on_done: OnDone,
}

/// A persistent pool of job-runner threads that multiplexes submitted
/// stencil runs over a fixed concurrency budget. Submission is one
/// unbounded channel send — strict FIFO, no per-job thread or pool
/// construction — and each runner drives the full supervision ladder
/// ([`run_supervised_full`](crate::run_supervised_full)) for one job at a
/// time.
///
/// Dropping the pool (or calling [`ExecPool::shutdown`]) closes the
/// submission channel and joins every runner; jobs already submitted still
/// run to completion first. A daemon draining *faster* than that cancels
/// in-flight jobs through their [`CancelHandle`]s before shutting down.
pub struct ExecPool {
    tx: Option<Sender<PoolJob>>,
    runners: Vec<JoinHandle<()>>,
    busy: Arc<AtomicUsize>,
}

impl fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecPool")
            .field("runners", &self.runners.len())
            .field("busy", &self.busy.load(Ordering::SeqCst))
            .finish()
    }
}

impl ExecPool {
    /// Spawns `workers` (≥ 1, clamped) persistent runner threads.
    pub fn new(workers: usize) -> ExecPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<PoolJob>();
        let busy = Arc::new(AtomicUsize::new(0));
        let runners = (0..workers)
            .map(|i| {
                let rx: Receiver<PoolJob> = rx.clone();
                let busy = Arc::clone(&busy);
                thread::Builder::new()
                    .name(format!("stencil-job-runner-{i}"))
                    .spawn(move || runner_loop(&rx, &busy))
                    .expect("spawn job runner")
            })
            .collect();
        ExecPool {
            tx: Some(tx),
            runners,
            busy,
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> ExecPool {
        let n = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ExecPool::new(n)
    }

    /// Number of runner threads (the concurrency budget).
    pub fn workers(&self) -> usize {
        self.runners.len()
    }

    /// Runners currently executing a job.
    pub fn busy(&self) -> usize {
        self.busy.load(Ordering::SeqCst)
    }

    /// Submits a job; `on_done` runs on the runner thread right after the
    /// supervisor returns. Never blocks — excess submissions queue in FIFO
    /// order until a runner frees up.
    pub fn submit(&self, spec: JobSpec, on_done: impl FnOnce(JobOutcome) + Send + 'static) {
        self.enqueue(spec, None, Box::new(on_done));
    }

    /// [`ExecPool::submit`] with an additional `on_start` callback, run on
    /// the runner thread immediately before the supervisor is entered —
    /// the seam a scheduler uses to move a job from queued to running.
    pub fn submit_with_start(
        &self,
        spec: JobSpec,
        on_start: impl FnOnce() + Send + 'static,
        on_done: impl FnOnce(JobOutcome) + Send + 'static,
    ) {
        self.enqueue(spec, Some(Box::new(on_start)), Box::new(on_done));
    }

    fn enqueue(&self, spec: JobSpec, on_start: Option<OnStart>, on_done: OnDone) {
        let tx = self.tx.as_ref().expect("pool already shut down");
        // A send can only fail if every runner died, which only happens
        // after shutdown took `tx`; treat it as a bug loudly.
        assert!(
            tx.send(PoolJob {
                spec: Box::new(spec),
                on_start,
                on_done,
            })
            .is_ok(),
            "job pool runners gone"
        );
    }

    /// [`ExecPool::submit`] returning a [`JobWaiter`] instead of taking a
    /// callback — the convenient shape for tests and benches.
    pub fn submit_waiter(&self, spec: JobSpec) -> JobWaiter {
        let (tx, rx) = unbounded();
        self.submit(spec, move |outcome| {
            let _ = tx.send(outcome);
        });
        JobWaiter(rx)
    }

    /// Closes the submission channel and joins every runner after the jobs
    /// already queued have finished.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        drop(self.tx.take());
        let me = thread::current().id();
        for h in self.runners.drain(..) {
            // A runner can end up dropping the pool itself (e.g. its job
            // callback held the last reference to the pool's owner); a
            // thread cannot join itself, so that runner is detached — it
            // exits on its own once the closed channel drains.
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// Blocks on one pooled job's outcome.
#[derive(Debug)]
pub struct JobWaiter(Receiver<JobOutcome>);

impl JobWaiter {
    /// Waits for the job to finish.
    ///
    /// # Panics
    ///
    /// Panics if the pool shut down without running the job (cannot happen
    /// while the pool that issued this waiter is alive).
    pub fn wait(self) -> JobOutcome {
        self.0.recv().expect("job pool dropped the job")
    }

    /// Waits up to `timeout`; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.0.recv_timeout(timeout).ok()
    }
}

fn runner_loop(rx: &Receiver<PoolJob>, busy: &AtomicUsize) {
    while let Ok(job) = rx.recv() {
        busy.fetch_add(1, Ordering::SeqCst);
        let PoolJob {
            spec,
            on_start,
            on_done,
        } = job;
        if let Some(f) = on_start {
            f();
        }
        let JobSpec {
            program,
            partition,
            mut state,
            opts,
        } = *spec;
        let (report, result) = run_supervised_full(&program, &partition, &mut state, &opts);
        on_done(JobOutcome {
            state,
            report,
            result,
        });
        busy.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn spec(iterations: u64) -> (Program, Partition) {
        let program = programs::jacobi_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(iterations);
        let features = StencilFeatures::extract(&program).unwrap();
        let design = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        let partition = Partition::new(features.extent, &design, &features.growth).unwrap();
        (program, partition)
    }

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64;
        for d in 0..p.dim() {
            v = v * 31.0 + p.coord(d) as f64;
        }
        (v * 0.001).sin()
    }

    #[test]
    fn pooled_jobs_match_the_direct_supervisor_bit_exactly() {
        let (program, partition) = spec(6);
        let mut oracle = GridState::new(&program, init);
        let (_, result) =
            run_supervised_full(&program, &partition, &mut oracle, &ExecOptions::default());
        result.unwrap();

        let pool = ExecPool::new(2);
        let waiters: Vec<JobWaiter> = (0..4)
            .map(|_| {
                pool.submit_waiter(JobSpec {
                    program: program.clone(),
                    partition: partition.clone(),
                    state: GridState::new(&program, init),
                    opts: ExecOptions::default(),
                })
            })
            .collect();
        for w in waiters {
            let out = w.wait();
            out.result.unwrap();
            assert_eq!(out.state.digest(), oracle.digest());
        }
        pool.shutdown();
    }

    #[test]
    fn cancel_handle_aborts_promptly_with_the_permanent_error() {
        let (program, partition) = spec(100_000);
        let cancel = CancelHandle::new();
        let progressed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&progressed);
        let opts = ExecOptions::default()
            .cancel(cancel.clone())
            .progress(Progress::new(move |done| {
                seen.store(done as usize, Ordering::SeqCst);
            }));

        let pool = ExecPool::new(1);
        let waiter = pool.submit_waiter(JobSpec {
            program,
            partition,
            state: GridState::new(
                &programs::jacobi_2d().with_extent(Extent::new2(24, 24)),
                init,
            ),
            opts,
        });
        // Let at least one barrier land, then cancel.
        while progressed.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        cancel.cancel();
        let out = waiter.wait();
        match out.result {
            Err(ExecError::JobCancelled { completed }) => {
                assert!(completed < 100_000, "cancel landed before the end");
            }
            other => panic!("expected JobCancelled, got {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn drop_joins_all_runners() {
        let before = crate::live_workers();
        {
            let pool = ExecPool::new(3);
            assert_eq!(pool.workers(), 3);
        }
        assert_eq!(crate::live_workers(), before);
    }
}
