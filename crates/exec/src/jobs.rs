//! Run-as-submitted-job seam: a persistent pool of job-runner threads the
//! service scheduler owns, plus the external control surface a long-running
//! daemon needs — cooperative cancellation ([`CancelHandle`]) and
//! barrier-granularity progress callbacks ([`Progress`]).
//!
//! Every `run_*` entry point in this crate blocks its caller and tears its
//! workers down when it returns; that is the right shape for a CLI run and
//! the wrong one for a multi-tenant service. [`ExecPool`] inverts the
//! ownership: the pool's runner threads are spawned once, live for the
//! daemon's lifetime, and jobs *enter the supervisor through them* — a
//! submission is one channel send, never a thread spawn. Admission control
//! (queue bounds, tenant quotas) stays with the caller; the pool only
//! bounds *concurrency* to its worker count, running excess submissions in
//! strict FIFO order as runners free up.
//!
//! Cancellation and progress ride inside [`ExecOptions`]
//! ([`ExecOptions::cancel`](crate::ExecOptions), `ExecOptions::progress`)
//! and are observed by every executor at the same cooperative points as the
//! wall-clock deadline: fused-block barriers and the blocking pipe tick. A
//! fired [`CancelHandle`] surfaces as the *permanent*
//! [`ExecError::JobCancelled`] — the supervisor stops at the last
//! consistent barrier (keeping an armed checkpoint store resumable)
//! instead of burning retries on work nobody wants anymore.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use stencilcl_grid::Partition;
use stencilcl_lang::{GridState, Program};

use crate::faults::FaultKind;
use crate::options::ExecOptions;
use crate::supervise::{dispatch_with, RecoveryPath, ResumeBase, RunReport};
use crate::ExecError;

/// External cooperative cancellation of one run. Clone freely: every clone
/// observes the same flag. Checked by the executors at fused-block
/// barriers and inside the blocking pipe tick, so a cancelled run drains
/// within one tick and returns [`ExecError::JobCancelled`] with the grid
/// at its last consistent barrier.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// A fresh, un-fired handle.
    pub fn new() -> CancelHandle {
        CancelHandle::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Barrier-granularity progress callback: invoked with the number of
/// iterations fully completed and committed each time a fused-block
/// barrier lands. Called from the run's coordinating thread (never from
/// pipe workers), so implementations may take locks — but they sit on the
/// barrier path and should stay cheap.
#[derive(Clone)]
pub struct Progress(Arc<dyn Fn(u64) + Send + Sync>);

impl Progress {
    /// Wraps a callback.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Progress {
        Progress(Arc::new(f))
    }

    /// Invokes the callback with the committed iteration count.
    pub fn notify(&self, completed: u64) {
        (self.0)(completed);
    }
}

impl fmt::Debug for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Progress(..)")
    }
}

/// One submitted run: everything a pool runner needs, owned.
#[derive(Debug)]
pub struct JobSpec {
    /// The stencil program to run to its own iteration count.
    pub program: Program,
    /// The partition the pipe executors run over.
    pub partition: Partition,
    /// Initial grid state; the outcome returns it advanced.
    pub state: GridState,
    /// Per-job options — engine, policy (deadline!), cancel handle,
    /// progress hook, per-job trace recorder, checkpoint policy.
    pub opts: ExecOptions,
    /// When set, the runner first tries to resume from the newest sealed
    /// checkpoint generation in this directory (replacing `state` with the
    /// restored grids); when nothing there is resumable — the previous
    /// incarnation died before its first sealed barrier — it falls back to
    /// running `state` fresh. The crash-only re-enqueue seam: a recovered
    /// job and a first-time job enter the pool through the same door.
    pub resume_dir: Option<PathBuf>,
}

/// What a runner does right before starting a job: notify the submitter
/// (schedulers move the job queued → running here).
type OnStart = Box<dyn FnOnce() + Send>;

/// What one pooled job produced: the final (or last-barrier) grid state,
/// the supervisor's attempt history, and the run outcome.
#[derive(Debug)]
pub struct JobOutcome {
    /// Grid state after the run — final on success, the last consistent
    /// barrier on failure or cancellation.
    pub state: GridState,
    /// Attempt history and recovery path.
    pub report: RunReport,
    /// `Ok(())` or the fault that ended the run.
    pub result: Result<(), ExecError>,
}

/// What a runner does after finishing a job: deliver the outcome.
type OnDone = Box<dyn FnOnce(JobOutcome) + Send>;

struct PoolJob {
    spec: Box<JobSpec>,
    on_start: Option<OnStart>,
    on_done: OnDone,
    /// Times this job was requeued after its runner died with an escaped
    /// panic. Past the pool's requeue limit the job fails instead.
    requeues: u32,
}

/// Everything a runner thread needs to run jobs, requeue a panic's victim,
/// and respawn a replacement for itself — shared by the pool and every
/// runner (original or respawned).
#[derive(Clone)]
struct RunnerCtx {
    rx: Receiver<PoolJob>,
    /// The pool's long-lived sender, used transiently by panic recovery to
    /// requeue the victim job. Taken (set to `None`) at drain so blocked
    /// `recv()`s observe channel closure — runners themselves never hold a
    /// persistent `Sender`.
    tx: Arc<Mutex<Option<Sender<PoolJob>>>>,
    busy: Arc<AtomicUsize>,
    respawned: Arc<AtomicUsize>,
    runners: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Name sequence for respawned runner threads.
    seq: Arc<AtomicUsize>,
    max_requeues: u32,
}

impl RunnerCtx {
    /// Spawns a replacement runner thread (the current one is dying with an
    /// escaped panic) and registers its handle for drain-time joining.
    fn respawn(&self) {
        let ctx = self.clone();
        let i = self.seq.fetch_add(1, Ordering::SeqCst);
        // Count before the spawn: the replacement may run, die, and deliver
        // an outcome before this dying thread resumes, and anyone that
        // delivery wakes must already observe this respawn.
        self.respawned.fetch_add(1, Ordering::SeqCst);
        match thread::Builder::new()
            .name(format!("stencil-job-runner-r{i}"))
            .spawn(move || runner_loop(&ctx))
        {
            Ok(h) => {
                self.runners
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(h);
            }
            Err(e) => {
                self.respawned.fetch_sub(1, Ordering::SeqCst);
                eprintln!("[stencilcl] failed to respawn job runner: {e}");
            }
        }
    }
}

/// A persistent pool of job-runner threads that multiplexes submitted
/// stencil runs over a fixed concurrency budget. Submission is one
/// unbounded channel send — strict FIFO, no per-job thread or pool
/// construction — and each runner drives the full supervision ladder
/// ([`run_supervised_full`](crate::run_supervised_full)) for one job at a
/// time.
///
/// Runners are themselves supervised: a runner that dies with an escaped
/// panic mid-job is detected on its own unwind path, a replacement thread
/// is spawned to keep the concurrency budget whole, and the victim job is
/// requeued — up to [`ExecPool::with_requeue_limit`]'s bound, after which
/// the job's outcome seals as [`ExecError::WorkerPanic`] instead of being
/// silently lost.
///
/// Dropping the pool (or calling [`ExecPool::shutdown`]) closes the
/// submission channel and joins every runner; jobs already submitted still
/// run to completion first. A daemon draining *faster* than that cancels
/// in-flight jobs through their [`CancelHandle`]s before shutting down.
pub struct ExecPool {
    ctx: RunnerCtx,
    workers: usize,
}

impl fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecPool")
            .field("runners", &self.workers)
            .field("busy", &self.ctx.busy.load(Ordering::SeqCst))
            .field("respawned", &self.ctx.respawned.load(Ordering::SeqCst))
            .finish()
    }
}

impl ExecPool {
    /// Spawns `workers` (≥ 1, clamped) persistent runner threads with the
    /// default panic-requeue budget of 2 per job.
    pub fn new(workers: usize) -> ExecPool {
        ExecPool::with_requeue_limit(workers, 2)
    }

    /// [`ExecPool::new`] with an explicit bound on how many times one job
    /// may be requeued after killing its runner with an escaped panic.
    pub fn with_requeue_limit(workers: usize, max_requeues: u32) -> ExecPool {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<PoolJob>();
        let ctx = RunnerCtx {
            rx,
            tx: Arc::new(Mutex::new(Some(tx))),
            busy: Arc::new(AtomicUsize::new(0)),
            respawned: Arc::new(AtomicUsize::new(0)),
            runners: Arc::new(Mutex::new(Vec::with_capacity(workers))),
            seq: Arc::new(AtomicUsize::new(0)),
            max_requeues,
        };
        {
            let mut runners = ctx.runners.lock().unwrap_or_else(PoisonError::into_inner);
            for i in 0..workers {
                let ctx = ctx.clone();
                runners.push(
                    thread::Builder::new()
                        .name(format!("stencil-job-runner-{i}"))
                        .spawn(move || runner_loop(&ctx))
                        .expect("spawn job runner"),
                );
            }
        }
        ExecPool { ctx, workers }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> ExecPool {
        let n = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ExecPool::new(n)
    }

    /// Number of runner threads (the concurrency budget).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runners currently executing a job.
    pub fn busy(&self) -> usize {
        self.ctx.busy.load(Ordering::SeqCst)
    }

    /// Runner threads respawned after dying with an escaped panic.
    pub fn respawned(&self) -> usize {
        self.ctx.respawned.load(Ordering::SeqCst)
    }

    /// Submits a job; `on_done` runs on the runner thread right after the
    /// supervisor returns. Never blocks — excess submissions queue in FIFO
    /// order until a runner frees up.
    pub fn submit(&self, spec: JobSpec, on_done: impl FnOnce(JobOutcome) + Send + 'static) {
        self.enqueue(spec, None, Box::new(on_done));
    }

    /// [`ExecPool::submit`] with an additional `on_start` callback, run on
    /// the runner thread immediately before the supervisor is entered —
    /// the seam a scheduler uses to move a job from queued to running.
    pub fn submit_with_start(
        &self,
        spec: JobSpec,
        on_start: impl FnOnce() + Send + 'static,
        on_done: impl FnOnce(JobOutcome) + Send + 'static,
    ) {
        self.enqueue(spec, Some(Box::new(on_start)), Box::new(on_done));
    }

    fn enqueue(&self, spec: JobSpec, on_start: Option<OnStart>, on_done: OnDone) {
        let tx = self.ctx.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let tx = tx.as_ref().expect("pool already shut down");
        // A send can only fail if every runner died, which only happens
        // after shutdown took `tx`; treat it as a bug loudly.
        assert!(
            tx.send(PoolJob {
                spec: Box::new(spec),
                on_start,
                on_done,
                requeues: 0,
            })
            .is_ok(),
            "job pool runners gone"
        );
    }

    /// [`ExecPool::submit`] returning a [`JobWaiter`] instead of taking a
    /// callback — the convenient shape for tests and benches.
    pub fn submit_waiter(&self, spec: JobSpec) -> JobWaiter {
        let (tx, rx) = unbounded();
        self.submit(spec, move |outcome| {
            let _ = tx.send(outcome);
        });
        JobWaiter(rx)
    }

    /// Closes the submission channel and joins every runner after the jobs
    /// already queued have finished.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        drop(
            self.ctx
                .tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let me = thread::current().id();
        // Joined runners may respawn replacements on their way down (a
        // panic guard runs before the thread exits), so loop until the
        // handle list stays empty.
        loop {
            let handles = std::mem::take(
                &mut *self
                    .ctx
                    .runners
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            if handles.is_empty() {
                break;
            }
            for h in handles {
                // A runner can end up dropping the pool itself (e.g. its
                // job callback held the last reference to the pool's
                // owner); a thread cannot join itself, so that runner is
                // detached — it exits on its own once the closed channel
                // drains.
                if h.thread().id() != me {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// Blocks on one pooled job's outcome.
#[derive(Debug)]
pub struct JobWaiter(Receiver<JobOutcome>);

impl JobWaiter {
    /// Waits for the job to finish.
    ///
    /// # Panics
    ///
    /// Panics if the pool shut down without running the job (cannot happen
    /// while the pool that issued this waiter is alive).
    pub fn wait(self) -> JobOutcome {
        self.0.recv().expect("job pool dropped the job")
    }

    /// Waits up to `timeout`; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.0.recv_timeout(timeout).ok()
    }
}

fn runner_loop(ctx: &RunnerCtx) {
    while let Ok(job) = ctx.rx.recv() {
        ctx.busy.fetch_add(1, Ordering::SeqCst);
        let mut guard = RunGuard {
            job: Some(job),
            ctx: ctx.clone(),
        };
        run_one(&mut guard);
        ctx.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one pooled job to its outcome. Called under a [`RunGuard`]: if
/// anything in here panics, the guard's `Drop` requeues (or seals) the job
/// and respawns a replacement runner.
fn run_one(guard: &mut RunGuard) {
    {
        let job = guard.job.as_mut().expect("guard holds the job");
        if let Some(f) = job.on_start.take() {
            f();
        }
        match job.spec.opts.faults.fire_job() {
            Some(FaultKind::RunnerPanicAtJob) => {
                panic!("injected fault: runner panic at job pickup")
            }
            Some(FaultKind::StallJob(ms)) => stall(&job.spec.opts, ms),
            _ => {}
        }
    }
    let (report, result) = {
        let job = guard.job.as_mut().expect("guard holds the job");
        execute(&mut job.spec)
    };
    // Past this point the job is settled: disarm the guard so a panic
    // inside `on_done` cannot re-run a finished job.
    let job = guard.job.take().expect("guard holds the job");
    let JobSpec { state, .. } = *job.spec;
    let _ = catch_unwind(AssertUnwindSafe(move || {
        (job.on_done)(JobOutcome {
            state,
            report,
            result,
        });
    }));
}

/// Dispatches one job through the supervisor — resume-first when the spec
/// carries a `resume_dir`, falling back to a fresh run when nothing there
/// is resumable yet.
fn execute(spec: &mut JobSpec) -> (RunReport, Result<(), ExecError>) {
    let faults = Arc::clone(&spec.opts.faults);
    if let Some(dir) = spec.resume_dir.clone() {
        match crate::persist::resume_impl(&spec.program, &spec.partition, &dir, &spec.opts, &faults)
        {
            Ok((state, report, result)) => {
                spec.state = state;
                return (report, result);
            }
            Err(e) => {
                eprintln!("[stencilcl] job resume fell back to a fresh run: {e}");
            }
        }
    }
    dispatch_with(
        &spec.program,
        &spec.partition,
        &mut spec.state,
        &spec.opts,
        &faults,
        ResumeBase::default(),
    )
}

/// The injected [`FaultKind::StallJob`] body: go silent (no progress
/// callbacks, no barriers) for `ms`, but stay responsive to the job's
/// cancel handle so a watchdog-fired cancellation still lands promptly.
fn stall(opts: &ExecOptions, ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if opts.cancel.as_ref().is_some_and(CancelHandle::is_cancelled) {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
}

/// Panic containment for one in-flight job. While armed (holding the job),
/// an unwind through the runner requeues the job — bounded by the pool's
/// requeue limit, past which the outcome seals as
/// [`ExecError::WorkerPanic`] — and respawns a replacement runner thread so
/// the concurrency budget survives the loss.
struct RunGuard {
    job: Option<PoolJob>,
    ctx: RunnerCtx,
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        let Some(mut job) = self.job.take() else {
            return;
        };
        if !thread::panicking() {
            return;
        }
        // The runner_loop's matching fetch_sub never runs on this thread
        // again — the unwind is killing it — so settle the count here.
        self.ctx.busy.fetch_sub(1, Ordering::SeqCst);
        job.requeues += 1;
        if job.requeues <= self.ctx.max_requeues {
            // Requeue through a transient clone of the pool's sender —
            // runners never hold one persistently, so a drained pool's
            // channel still closes. A `None` here means the pool is
            // draining: nothing will pick the job up, so seal it below.
            let tx = self
                .ctx
                .tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            if let Some(tx) = tx {
                match tx.send(job) {
                    Ok(()) => {
                        self.ctx.respawn();
                        return;
                    }
                    Err(back) => job = back.0,
                }
            }
        }
        // Respawn before delivering the outcome: anyone the delivery wakes
        // must already observe the replaced runner.
        self.ctx.respawn();
        let PoolJob { spec, on_done, .. } = job;
        let JobSpec { state, .. } = *spec;
        let outcome = JobOutcome {
            state,
            report: RunReport {
                attempts: Vec::new(),
                path: RecoveryPath::Threaded,
            },
            result: Err(ExecError::WorkerPanic { kernel: 0 }),
        };
        let _ = catch_unwind(AssertUnwindSafe(move || on_done(outcome)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_supervised_full;
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn spec(iterations: u64) -> (Program, Partition) {
        let program = programs::jacobi_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(iterations);
        let features = StencilFeatures::extract(&program).unwrap();
        let design = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        let partition = Partition::new(features.extent, &design, &features.growth).unwrap();
        (program, partition)
    }

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64;
        for d in 0..p.dim() {
            v = v * 31.0 + p.coord(d) as f64;
        }
        (v * 0.001).sin()
    }

    #[test]
    fn pooled_jobs_match_the_direct_supervisor_bit_exactly() {
        let (program, partition) = spec(6);
        let mut oracle = GridState::new(&program, init);
        let (_, result) =
            run_supervised_full(&program, &partition, &mut oracle, &ExecOptions::default());
        result.unwrap();

        let pool = ExecPool::new(2);
        let waiters: Vec<JobWaiter> = (0..4)
            .map(|_| {
                pool.submit_waiter(JobSpec {
                    program: program.clone(),
                    partition: partition.clone(),
                    state: GridState::new(&program, init),
                    opts: ExecOptions::default(),
                    resume_dir: None,
                })
            })
            .collect();
        for w in waiters {
            let out = w.wait();
            out.result.unwrap();
            assert_eq!(out.state.digest(), oracle.digest());
        }
        pool.shutdown();
    }

    #[test]
    fn cancel_handle_aborts_promptly_with_the_permanent_error() {
        let (program, partition) = spec(100_000);
        let cancel = CancelHandle::new();
        let progressed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&progressed);
        let opts = ExecOptions::default()
            .cancel(cancel.clone())
            .progress(Progress::new(move |done| {
                seen.store(done as usize, Ordering::SeqCst);
            }));

        let pool = ExecPool::new(1);
        let waiter = pool.submit_waiter(JobSpec {
            program,
            partition,
            state: GridState::new(
                &programs::jacobi_2d().with_extent(Extent::new2(24, 24)),
                init,
            ),
            opts,
            resume_dir: None,
        });
        // Let at least one barrier land, then cancel.
        while progressed.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        cancel.cancel();
        let out = waiter.wait();
        match out.result {
            Err(ExecError::JobCancelled { completed }) => {
                assert!(completed < 100_000, "cancel landed before the end");
            }
            other => panic!("expected JobCancelled, got {other:?}"),
        }
        pool.shutdown();
    }

    #[test]
    fn drop_joins_all_runners() {
        let before = crate::live_workers();
        {
            let pool = ExecPool::new(3);
            assert_eq!(pool.workers(), 3);
        }
        assert_eq!(crate::live_workers(), before);
    }

    #[cfg(feature = "fault-injection")]
    mod chaos {
        use super::*;
        use crate::faults::{FaultKind, FaultPlan};

        #[test]
        fn runner_panic_respawns_and_the_job_still_completes_bit_exact() {
            let (program, partition) = spec(6);
            let mut oracle = GridState::new(&program, init);
            let (_, result) =
                run_supervised_full(&program, &partition, &mut oracle, &ExecOptions::default());
            result.unwrap();

            let plan = FaultPlan::new().inject_job(FaultKind::RunnerPanicAtJob);
            let pool = ExecPool::new(1);
            let waiter = pool.submit_waiter(JobSpec {
                program,
                partition,
                state: GridState::new(
                    &programs::jacobi_2d().with_extent(Extent::new2(24, 24)),
                    init,
                ),
                opts: ExecOptions::default().faults(Arc::new(plan)),
                resume_dir: None,
            });
            let out = waiter.wait();
            out.result.unwrap();
            assert_eq!(out.state.digest(), oracle.digest());
            assert_eq!(pool.respawned(), 1, "one replacement runner spawned");
            pool.shutdown();
        }

        #[test]
        fn requeue_budget_exhaustion_seals_the_job_as_worker_panic() {
            let (program, partition) = spec(6);
            let plan = FaultPlan::new()
                .inject_job(FaultKind::RunnerPanicAtJob)
                .inject_job(FaultKind::RunnerPanicAtJob);
            // Budget of one requeue: the first panic requeues, the second
            // (the injected schedule re-fires on pickup) exhausts it.
            let pool = ExecPool::with_requeue_limit(1, 1);
            let waiter = pool.submit_waiter(JobSpec {
                program,
                partition,
                state: GridState::new(
                    &programs::jacobi_2d().with_extent(Extent::new2(24, 24)),
                    init,
                ),
                opts: ExecOptions::default().faults(Arc::new(plan)),
                resume_dir: None,
            });
            let out = waiter.wait();
            match out.result {
                Err(ExecError::WorkerPanic { .. }) => {}
                other => panic!("expected WorkerPanic after budget exhaustion, got {other:?}"),
            }
            assert_eq!(pool.respawned(), 2, "both dead runners were replaced");
            pool.shutdown();
        }

        #[test]
        fn stalled_job_stays_responsive_to_cancellation() {
            let (program, partition) = spec(100_000);
            let plan = FaultPlan::new().inject_job(FaultKind::StallJob(60_000));
            let cancel = CancelHandle::new();
            let pool = ExecPool::new(1);
            let waiter = pool.submit_waiter(JobSpec {
                program,
                partition,
                state: GridState::new(
                    &programs::jacobi_2d().with_extent(Extent::new2(24, 24)),
                    init,
                ),
                opts: ExecOptions::default()
                    .cancel(cancel.clone())
                    .faults(Arc::new(plan)),
                resume_dir: None,
            });
            // The stall fires before the first barrier; cancel must cut
            // through it long before the 60 s stall elapses.
            thread::sleep(Duration::from_millis(20));
            cancel.cancel();
            let out = waiter
                .wait_timeout(Duration::from_secs(10))
                .expect("cancel cut through the injected stall");
            match out.result {
                Err(ExecError::JobCancelled { .. }) => {}
                other => panic!("expected JobCancelled, got {other:?}"),
            }
            pool.shutdown();
        }
    }
}
