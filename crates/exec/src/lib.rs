//! Functional executors validating stencil design semantics.
//!
//! The OpenCL designs the framework generates are only useful if they compute
//! the *same values* as the original stencil algorithm. This crate executes
//! each accelerator architecture functionally, on real grids:
//!
//! * [`run_reference`] — the naive algorithm: every iteration updates the
//!   whole grid with a global synchronization (Figure 3 of the paper);
//! * [`run_overlapped`] — the baseline (Nacci et al.): each tile loads its
//!   expanded cone footprint and computes all fused iterations independently,
//!   recomputing the overlap with its neighbors;
//! * [`run_pipe_shared`] — the paper's design: tiles of one region advance in
//!   lockstep and exchange boundary slabs after every statement, exactly what
//!   the OpenCL pipes carry (works for both equal and heterogeneous tilings);
//! * [`run_threaded`] — the pipe design again, but with a persistent pool of
//!   one OS thread per kernel and bounded crossbeam channels as the pipes: a
//!   live concurrent execution of the dataflow, not a re-simulation.
//!
//! Both pipe executors share one per-run pipeline plan: geometry is
//! planned once, each tile keeps a persistent local window whose halo ring
//! is refreshed incrementally between fused blocks, and the global grid is
//! double-buffered instead of snapshot-cloned per block. The threaded
//! executor keeps its workers and channels alive for the whole run, guarded
//! by a watchdog that turns a wedged pipeline into [`ExecError::PipeStall`];
//! its deadlines come from an [`ExecPolicy`] and a failed pool is torn down
//! through a cooperative cancellation token, so worker threads never
//! outlive the call.
//!
//! On top of the threaded executor, [`run_supervised`] adds production
//! robustness: the double-buffered grid is a checkpoint at every
//! fused-block barrier, transient faults (panics, stalls, pipe-protocol
//! skew) trigger checkpointed retries with exponential backoff, and once
//! [`ExecPolicy::max_retries`] is spent the run degrades to the sequential
//! executor — every attempt recorded in a [`RunReport`]. The
//! `fault-injection` cargo feature arms a deterministic fault plan
//! (`FaultPlan`) for chaos-testing these paths; without the feature the
//! hooks compile to nothing.
//!
//! Every executor must produce results identical to [`run_reference`] — the
//! crate's test suite and `tests/equivalence.rs` enforce bit-equality, since
//! each grid cell's update expression is evaluated with the same operation
//! order in every mode.
//!
//! By default every executor evaluates update statements through flat
//! bytecode kernels (`stencilcl_lang::CompiledProgram`) compiled once per
//! run — per (region, kernel) for the pipe executors. Setting
//! `STENCILCL_INTERPRET=1` switches the run back to the tree-walking AST
//! interpreter (the differential-test oracle); `STENCILCL_UNROLL=<U>`
//! selects the scalar row-sweep unroll factor and `STENCILCL_LANES=<W>`
//! the lane width of the vectorized tape walk (cross-cell lanes, so every
//! width is bit-exact — see `stencilcl_lang::CompiledProgram`). Setting
//! [`ExecPolicy::tile`] (or `STENCILCL_TILE=<T>`) switches the reference
//! executor to a temporally blocked trapezoid sweep, with the redundant
//! halo recompute reported via [`Counter::RedundantCells`].
//! All modes are bit-exact.
//! Environment variables are only the outermost default: every executor has
//! a `*_opts` variant taking an explicit [`ExecOptions`] (engine, policy,
//! telemetry sink), and the `STENCILCL_*` knobs are parsed exactly once per
//! process by `stencilcl_telemetry::EnvConfig`.
//!
//! # Observability
//!
//! Passing [`ExecOptions::trace`] a [`Recorder`] records per-(kernel,
//! region) phase spans (launch, halo read, compute, pipe wait, write-back,
//! barrier) and event counters (halo bytes, slabs sent/received, cells
//! computed, pipe-stall nanoseconds, retries) from inside every executor,
//! lock-free. The executors are generic over the [`TraceSink`], so the
//! default untraced run monomorphizes against a zero-sized no-op sink and
//! pays nothing. `STENCILCL_TRACE=1` arms recording for the env-default
//! entry points; the `ablation_trace` bench bin and the CLI `trace`
//! subcommand export Chrome-tracing JSON and calibration reports.
//!
//! # Limitations
//!
//! Pipe-based executors exchange data across tile *faces* only. Stencils
//! whose statements read diagonal offsets (more than one nonzero coordinate)
//! would need corner exchanges and are rejected with
//! [`ExecError::DiagonalAccess`]; all seven paper benchmarks are star
//! stencils. (The baseline executor handles any shape.)
//!
//! # Example
//!
//! ```
//! use stencilcl_exec::{run_pipe_shared, run_reference};
//! use stencilcl_grid::{Design, DesignKind, Extent, Partition};
//! use stencilcl_lang::{programs, GridState, StencilFeatures};
//!
//! let program = programs::jacobi_2d().with_extent(Extent::new2(32, 32)).with_iterations(6);
//! let features = StencilFeatures::extract(&program)?;
//! let design = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![8, 8])?;
//! let partition = Partition::new(features.extent, &design, &features.growth)?;
//!
//! let init = |_: &str, p: &stencilcl_grid::Point| (p.coord(0) * 31 + p.coord(1)) as f64;
//! let mut expect = GridState::new(&program, init);
//! run_reference(&program, &mut expect)?;
//! let mut got = GridState::new(&program, init);
//! run_pipe_shared(&program, &partition, &mut got)?;
//! assert_eq!(expect.max_abs_diff(&got)?, 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod blocked_parallel;
mod blocking;
mod domains;
mod engine;
mod error;
mod faults;
mod integrity;
mod jobs;
mod options;
mod overlapped;
mod persist;
mod pipeshare;
mod pool;
mod reference;
mod supervise;
mod threaded;
mod verify;
mod window;

#[cfg(feature = "fault-injection")]
pub use blocked_parallel::run_blocked_parallel_injected;
pub use blocked_parallel::{run_blocked_parallel, run_blocked_parallel_opts};
pub use domains::DomainPlan;
pub use error::ExecError;
pub use faults::{FaultKind, FaultPlan};
pub use integrity::{HealthMode, HealthPolicy};
pub use jobs::{CancelHandle, ExecPool, JobOutcome, JobSpec, JobWaiter, Progress};
pub use options::{EngineKind, ExecOptions};
pub use overlapped::{run_overlapped, run_overlapped_opts};
#[cfg(feature = "fault-injection")]
pub use persist::resume_supervised_injected_full;
pub use persist::{
    load_latest, policy_fingerprint, program_hash, resume_supervised, resume_supervised_full,
    CheckpointManifest, CheckpointPolicy, CheckpointStore, DesignSpec, DirStore, GridMeta,
    LoadedCheckpoint,
};
pub use pipeshare::{run_pipe_shared, run_pipe_shared_opts};
pub use reference::{run_reference, run_reference_opts};
pub use supervise::{
    run_supervised, run_supervised_full, run_supervised_opts, Attempt, AttemptMode,
    DecorrelatedJitter, ExecPolicy, RecoveryPath, RunReport,
};
#[cfg(feature = "fault-injection")]
pub use supervise::{
    run_supervised_injected, run_supervised_injected_full, run_supervised_injected_opts,
};
pub use threaded::{live_workers, run_threaded, run_threaded_opts, run_threaded_with};
pub use verify::{verify_design, ExecMode};
pub use window::{copy_slab, extract_window, halo_ring, refresh_ring, write_back};

// Telemetry vocabulary re-exported so executor callers need not depend on
// the telemetry crate directly for the common case.
pub use stencilcl_telemetry::{Counter, Disabled, MeasuredTrace, Recorder, TraceSink};
