use stencilcl_grid::{FaceKind, Partition, Rect};
use stencilcl_lang::{GridState, Interpreter, Program, StencilFeatures};

use crate::domains::{reject_diagonals, DomainPlan};
use crate::overlapped::window_extent;
use crate::window::{copy_slab, extract_window, write_back};
use crate::ExecError;

/// Runs the paper's pipe-shared execution (equal or heterogeneous tiling):
/// the tiles of each region advance through the fused iterations in
/// lockstep, and after every update statement each tile pushes the freshly
/// computed boundary slab of the statement's target array to its pipe
/// neighbors, which splice it into their local halos.
///
/// This is the sequential (deterministic) rendition of the dataflow;
/// [`run_threaded`](crate::run_threaded) executes the same protocol with
/// real threads and channels. Both must match
/// [`run_reference`](crate::run_reference) exactly.
///
/// # Errors
///
/// Returns [`ExecError::BadConfiguration`] for baseline partitions,
/// [`ExecError::DiagonalAccess`] for non-star stencils, and propagates
/// geometry/interpreter errors.
pub fn run_pipe_shared(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
) -> Result<(), ExecError> {
    let features = StencilFeatures::extract(program)?;
    if !partition.design().kind().uses_pipes() {
        return Err(ExecError::config(
            "run_pipe_shared expects a pipe-shared or heterogeneous design",
        ));
    }
    reject_diagonals(&features)?;

    let kind = partition.design().kind();
    let fused = partition.design().fused();
    let grid_rect = Rect::from_extent(&program.extent());
    let updated: Vec<&str> = program.updated_grids();
    let mut done = 0u64;
    while done < program.iterations {
        let h_eff = fused.min(program.iterations - done);
        let snapshot = state.clone();
        for region in partition.region_indices() {
            let tiles = partition.tiles_for_region(&region);
            let plans: Vec<DomainPlan> = tiles
                .iter()
                .map(|t| DomainPlan::new(&features, t, kind, h_eff, &grid_rect))
                .collect::<Result<_, _>>()?;
            let programs: Vec<Program> = plans
                .iter()
                .map(|dp| Ok(program.with_extent(window_extent(&dp.buffer())?)))
                .collect::<Result<_, ExecError>>()?;
            let mut locals: Vec<GridState> = plans
                .iter()
                .zip(&programs)
                .map(|(dp, lp)| extract_window(&snapshot, program, lp, &dp.buffer()))
                .collect::<Result<_, _>>()?;
            let interps: Vec<Interpreter<'_>> =
                programs.iter().map(Interpreter::new).collect();

            // Directed exchange edges: (from, to, absolute overlap region).
            let edges: Vec<(usize, usize, Rect)> = tiles
                .iter()
                .enumerate()
                .flat_map(|(t, tile)| {
                    let plans = &plans;
                    tile.faces().iter().filter_map(move |f| match f.kind {
                        FaceKind::Shared { neighbor } => {
                            let halo = plans[neighbor].halo_rect(f.axis, !f.high);
                            let overlap = halo
                                .intersect(&plans[t].buffer())
                                .expect("region tiles share one dimensionality");
                            Some((t, neighbor, overlap))
                        }
                        _ => None,
                    })
                })
                .collect();

            for i in 1..=h_eff {
                for s in 0..program.updates.len() {
                    for t in 0..tiles.len() {
                        let domain = plans[t].domain(i, s).translate(&-plans[t].buffer().lo())?;
                        interps[t].apply_statement(&mut locals[t], s, &domain)?;
                    }
                    let target = &program.updates[s].target;
                    for &(from, to, overlap) in &edges {
                        let (src, dst) = two_mut(&mut locals, from, to);
                        copy_slab(
                            src,
                            &plans[from].buffer().lo(),
                            dst,
                            &plans[to].buffer().lo(),
                            target,
                            &overlap,
                        )?;
                    }
                }
            }
            for (t, tile) in tiles.iter().enumerate() {
                write_back(state, &locals[t], &updated, &plans[t].buffer().lo(), &tile.rect())?;
            }
        }
        done += h_eff;
    }
    Ok(())
}

/// Disjoint mutable borrows of two vector slots.
///
/// # Panics
///
/// Panics if `a == b` (a tile is never its own pipe neighbor).
pub(crate) fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&T, &mut T) {
    assert_ne!(a, b, "a tile cannot exchange with itself");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_reference;
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::programs;

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64;
        for d in 0..p.dim() {
            v = v * 37.0 + p.coord(d) as f64;
        }
        (v * 0.0017).cos()
    }

    fn check(program: &Program, design: &Design) {
        let features = StencilFeatures::extract(program).unwrap();
        let partition = Partition::new(program.extent(), design, &features.growth).unwrap();
        let mut expect = GridState::new(program, init);
        run_reference(program, &mut expect).unwrap();
        let mut got = GridState::new(program, init);
        run_pipe_shared(program, &partition, &mut got).unwrap();
        assert_eq!(
            expect.max_abs_diff(&got).unwrap(),
            0.0,
            "{} diverged from reference",
            program.name
        );
    }

    #[test]
    fn jacobi_1d_pipe_matches_reference() {
        let p = programs::jacobi_1d().with_extent(Extent::new1(64)).with_iterations(9);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![4], vec![8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn jacobi_2d_pipe_matches_reference() {
        let p = programs::jacobi_2d().with_extent(Extent::new2(32, 32)).with_iterations(8);
        let d = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn fdtd_2d_pipe_matches_reference() {
        let p = programs::fdtd_2d().with_extent(Extent::new2(24, 24)).with_iterations(6);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn heterogeneous_tiling_matches_reference() {
        let p = programs::jacobi_2d().with_extent(Extent::new2(32, 32)).with_iterations(6);
        let d = Design::heterogeneous(3, vec![vec![6, 10], vec![12, 4]]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn hotspot_2d_with_read_only_power_matches() {
        let p = programs::hotspot_2d().with_extent(Extent::new2(24, 24)).with_iterations(5);
        let d = Design::equal(DesignKind::PipeShared, 5, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn jacobi_3d_pipe_matches_reference() {
        let p = programs::jacobi_3d().with_extent(Extent::new3(12, 12, 12)).with_iterations(4);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2, 2], vec![3, 3, 3]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn rejects_baseline_partition() {
        let p = programs::jacobi_1d().with_extent(Extent::new1(32)).with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(run_pipe_shared(&p, &partition, &mut s).is_err());
    }

    #[test]
    fn rejects_diagonal_stencils() {
        let p = stencilcl_lang::parse(
            "stencil d { grid A[16][16] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i-1][j-1] + A[i+1][j+1]); }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![4, 4]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(matches!(
            run_pipe_shared(&p, &partition, &mut s).unwrap_err(),
            ExecError::DiagonalAccess { .. }
        ));
    }

    #[test]
    fn two_mut_returns_disjoint_slots() {
        let mut v = vec![1, 2, 3];
        let (a, b) = two_mut(&mut v, 0, 2);
        assert_eq!((*a, *b), (1, 3));
        let (a, b) = two_mut(&mut v, 2, 0);
        assert_eq!((*a, *b), (3, 1));
    }
}
