use stencilcl_grid::{Partition, Rect};
use stencilcl_lang::{GridState, Program};
use stencilcl_telemetry::{Counter, Disabled, TracePhase, TraceSink};

use crate::engine::Engine;
use crate::integrity::{scan_state, slab_checksum, verify_slab, RunLimits};
use crate::options::{EngineKind, ExecOptions};
use crate::pool::{apply_statement_split, Edge, PipelinePlan, SplitScratch};
use crate::window::{extract_window, refresh_ring, write_back};
use crate::ExecError;

/// Runs the paper's pipe-shared execution (equal or heterogeneous tiling):
/// the tiles of each region advance through the fused iterations in
/// lockstep, and after every update statement each tile pushes the freshly
/// computed boundary slab of the statement's target array to its pipe
/// neighbors, which splice it into their local halos.
///
/// This is the sequential (deterministic) rendition of the dataflow;
/// [`run_threaded`](crate::run_threaded) executes the same protocol with a
/// persistent pool of worker threads and channels. Both must match
/// [`run_reference`](crate::run_reference) exactly.
///
/// All geometry is planned once per run ([`PipelinePlan`]); each tile's
/// local window persists across fused blocks with only its halo ring
/// refreshed, and the global grid is double-buffered (reads from `cur`,
/// tile write-backs into `next`, swap per block) instead of cloned per
/// block.
///
/// # Errors
///
/// Returns [`ExecError::BadConfiguration`] for baseline partitions,
/// [`ExecError::DiagonalAccess`] for non-star stencils, and propagates
/// geometry/interpreter errors.
pub fn run_pipe_shared(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
) -> Result<(), ExecError> {
    run_pipe_shared_opts(program, partition, state, &ExecOptions::from_env())
}

/// [`run_pipe_shared`] with explicit [`ExecOptions`]: engine choice and
/// (optionally) a telemetry recorder. Because this executor is sequential,
/// its trace shows the dataflow's logical order — slab splices appear as
/// `Dependent` spans on the receiving kernel's row.
///
/// # Errors
///
/// Same conditions as [`run_pipe_shared`].
pub fn run_pipe_shared_opts(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    let limits = opts.limits();
    match &opts.trace {
        Some(rec) => pipe_shared_impl(
            program,
            partition,
            state,
            opts.engine,
            opts.lanes,
            limits,
            &rec.clone(),
        ),
        None => pipe_shared_impl(
            program,
            partition,
            state,
            opts.engine,
            opts.lanes,
            limits,
            &Disabled,
        ),
    }
}

/// The monomorphized body shared by [`run_pipe_shared_opts`] and the
/// supervisor's sequential-fallback path (which must keep the failing run's
/// engine and sink).
pub(crate) fn pipe_shared_impl<S: TraceSink>(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    engine: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    sink: &S,
) -> Result<(), ExecError> {
    let plan = PipelinePlan::new(program, partition, lanes)?;
    if plan.depths.is_empty() {
        return Ok(());
    }
    let updated: Vec<&str> = plan.updated.iter().map(String::as_str).collect();
    let region_count = plan.regions.len();
    let kernels = plan.tiles.first().map_or(0, Vec::len);

    // Double buffer: `cur` holds every value as of the block start, `next`
    // receives the tile write-backs. Tiles partition the grid, so after a
    // block `next`'s updated arrays are fully written and the roles swap.
    let mut cur = state.clone();
    let mut next = state.clone();
    // Persistent local windows, one per (region, kernel), created lazily on
    // the first block and halo-refreshed afterwards.
    let mut locals: Vec<Vec<Option<GridState>>> =
        vec![(0..kernels).map(|_| None).collect(); region_count];
    // One engine per (region, kernel): the region's compiled bytecode by
    // default, the AST interpreter in oracle mode.
    let engines: Vec<Vec<Engine<'_>>> = (0..region_count)
        .map(|r| {
            (0..kernels)
                .map(|k| Engine::build(engine, &plan.local_programs[r][k], &plan.compiled[r][k]))
                .collect()
        })
        .collect();
    let mut scratch = SplitScratch::new();

    // Per-kernel outgoing edges and their local-coordinate source rects are
    // iteration- and statement-invariant: route once per (depth, region).
    type Routing<'e> = (Vec<Vec<&'e Edge>>, Vec<Vec<Rect>>);
    let mut routes: Vec<Vec<Routing<'_>>> = Vec::with_capacity(plan.depths.len());
    for depth in &plan.depths {
        let mut per_region = Vec::with_capacity(region_count);
        for r in 0..region_count {
            let mut out_edges: Vec<Vec<&Edge>> = vec![Vec::new(); kernels];
            let mut out_rects: Vec<Vec<Rect>> = vec![Vec::new(); kernels];
            for e in &depth.edges[r] {
                out_edges[e.from].push(e);
                out_rects[e.from].push(e.overlap.translate(&-plan.windows[r][e.from].lo())?);
            }
            per_region.push((out_edges, out_rects));
        }
        routes.push(per_region);
    }

    // Tile index for attributing a health hit to its owning kernel.
    let tile_index: Vec<(usize, Rect)> = if limits.health.enabled() {
        let tiles = &plan.tiles;
        (0..region_count)
            .flat_map(|r| (0..kernels).map(move |k| (k, tiles[r][k])))
            .collect()
    } else {
        Vec::new()
    };
    // Global slab sequence counters: the sequential protocol emits and
    // splices slabs in one deterministic order, so a single send/recv pair
    // plays the role of the threaded pool's per-channel counters.
    let mut send_seq = 0u64;
    let mut recv_seq = 0u64;

    let mut done = 0u64;
    while done < plan.iterations {
        if let Err(e) = limits.check_deadline(done) {
            // `cur` is the last completed barrier — hand it back as the
            // partial result the error's `completed` count describes.
            *state = cur;
            return Err(e);
        }
        let h = plan.fused.min(plan.iterations - done);
        let di = plan.depth_index(h);
        let depth = &plan.depths[di];
        for r in 0..region_count {
            for (k, slot) in locals[r].iter_mut().enumerate() {
                let read_t0 = sink.now();
                match slot {
                    slot @ None => {
                        *slot = Some(extract_window(
                            &cur,
                            program,
                            &plan.local_programs[r][k],
                            &plan.windows[r][k],
                        )?);
                        if S::ACTIVE {
                            let cells: u64 = plan.windows[r][k].volume();
                            sink.add(
                                Counter::HaloBytes,
                                cells
                                    * std::mem::size_of::<f64>() as u64
                                    * plan.local_programs[r][k].grids.len() as u64,
                            );
                        }
                    }
                    Some(local) => {
                        refresh_ring(
                            local,
                            &cur,
                            &plan.rings[r][k],
                            &plan.windows[r][k].lo(),
                            &updated,
                        )?;
                        if S::ACTIVE {
                            let cells: u64 = plan.rings[r][k].iter().map(Rect::volume).sum();
                            sink.add(
                                Counter::HaloBytes,
                                cells * std::mem::size_of::<f64>() as u64 * updated.len() as u64,
                            );
                        }
                    }
                }
                if S::ACTIVE {
                    sink.span(k, r, TracePhase::Read, read_t0, sink.now());
                }
            }
            let (out_edges, out_rects) = &routes[di][r];
            for i in 1..=h {
                for s in 0..program.updates.len() {
                    // Compute every tile's statement against its own
                    // pre-splice window, buffering the emitted slabs...
                    let mut slabs = Vec::with_capacity(depth.edges[r].len());
                    for k in 0..kernels {
                        let domain = depth.local_domain(r, k, i, s, plan.stmts);
                        let local = locals[r][k].as_mut().expect("window extracted");
                        let edges = &out_edges[k];
                        let compute_t0 = sink.now();
                        apply_statement_split(
                            &engines[r][k],
                            local,
                            s,
                            domain,
                            &out_rects[k],
                            &mut scratch,
                            sink,
                            |e, values| {
                                if S::ACTIVE {
                                    sink.add(Counter::SlabsSent, 1);
                                    sink.add(
                                        Counter::HaloBytes,
                                        (values.len() * std::mem::size_of::<f64>()) as u64,
                                    );
                                }
                                let checksum = limits.integrity.then(|| {
                                    let sum = slab_checksum(send_seq, (done + i, s), &values);
                                    send_seq += 1;
                                    sum
                                });
                                slabs.push((edges[e].to, edges[e].overlap, values, checksum));
                                Ok(())
                            },
                        )?;
                        if S::ACTIVE {
                            sink.span(
                                k,
                                r,
                                TracePhase::Compute {
                                    iteration: done + i,
                                },
                                compute_t0,
                                sink.now(),
                            );
                        }
                    }
                    // ...then splice them all, in edge-discovery order (the
                    // same per-receiver order the threaded pool uses).
                    let target = &program.updates[s].target;
                    for (to, overlap, values, checksum) in slabs {
                        let splice_t0 = sink.now();
                        if limits.integrity {
                            let Some(sum) = checksum else {
                                return Err(ExecError::SlabCorrupt {
                                    kernel: to,
                                    step: (done + i, s),
                                });
                            };
                            verify_slab(to, recv_seq, (done + i, s), &values, sum, sink)?;
                            recv_seq += 1;
                        }
                        let dst_rect = overlap.translate(&-plan.windows[r][to].lo())?;
                        let dst = locals[r][to].as_mut().expect("window extracted");
                        dst.grid_mut(target)?.write_window(&dst_rect, &values)?;
                        if S::ACTIVE {
                            sink.add(Counter::SlabsReceived, 1);
                            sink.span(
                                to,
                                r,
                                TracePhase::Dependent {
                                    iteration: done + i,
                                },
                                splice_t0,
                                sink.now(),
                            );
                        }
                    }
                }
            }
            for (k, slot) in locals[r].iter().enumerate() {
                let local = slot.as_ref().expect("window extracted");
                let write_t0 = sink.now();
                write_back(
                    &mut next,
                    local,
                    &updated,
                    &plan.windows[r][k].lo(),
                    &plan.tiles[r][k],
                )?;
                if S::ACTIVE {
                    sink.span(k, r, TracePhase::Write, write_t0, sink.now());
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        // Health scan of the block just committed into `cur`: after the
        // swap `next` still holds the previous barrier, so a divergence
        // hands back the last *healthy* checkpoint.
        if limits.health.enabled() {
            if let Err(e) = scan_state(&limits.health, &cur, &plan.updated, &tile_index, done, sink)
            {
                *state = next;
                return Err(e);
            }
        }
        done += h;
        // Committed barrier: feed the streamed-progress hook.
        limits.note_progress(done);
    }
    *state = cur;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_reference;
    use stencilcl_grid::{Design, DesignKind, Extent, Point};
    use stencilcl_lang::{programs, StencilFeatures};

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64;
        for d in 0..p.dim() {
            v = v * 37.0 + p.coord(d) as f64;
        }
        (v * 0.0017).cos()
    }

    fn check(program: &Program, design: &Design) {
        let features = StencilFeatures::extract(program).unwrap();
        let partition = Partition::new(program.extent(), design, &features.growth).unwrap();
        let mut expect = GridState::new(program, init);
        run_reference(program, &mut expect).unwrap();
        let mut got = GridState::new(program, init);
        run_pipe_shared(program, &partition, &mut got).unwrap();
        assert_eq!(
            expect.max_abs_diff(&got).unwrap(),
            0.0,
            "{} diverged from reference",
            program.name
        );
    }

    #[test]
    fn jacobi_1d_pipe_matches_reference() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(64))
            .with_iterations(9);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![4], vec![8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn jacobi_2d_pipe_matches_reference() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(8);
        let d = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn fdtd_2d_pipe_matches_reference() {
        let p = programs::fdtd_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(6);
        let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn heterogeneous_tiling_matches_reference() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(6);
        let d = Design::heterogeneous(3, vec![vec![6, 10], vec![12, 4]]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn hotspot_2d_with_read_only_power_matches() {
        let p = programs::hotspot_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(5);
        let d = Design::equal(DesignKind::PipeShared, 5, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn jacobi_3d_pipe_matches_reference() {
        let p = programs::jacobi_3d()
            .with_extent(Extent::new3(12, 12, 12))
            .with_iterations(4);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2, 2], vec![3, 3, 3]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn partial_final_block_reuses_the_deep_windows() {
        // 10 iterations with h=4: blocks of 4, 4, 2 — the depth-2 pass must
        // run inside windows sized for depth 4.
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(10);
        let d = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn rejects_baseline_partition() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(run_pipe_shared(&p, &partition, &mut s).is_err());
    }

    #[test]
    fn rejects_diagonal_stencils() {
        let p = stencilcl_lang::parse(
            "stencil d { grid A[16][16] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i-1][j-1] + A[i+1][j+1]); }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![4, 4]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(matches!(
            run_pipe_shared(&p, &partition, &mut s).unwrap_err(),
            ExecError::DiagonalAccess { .. }
        ));
    }

    #[test]
    fn traced_run_is_bit_exact_and_produces_spans() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(4);
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2, 2], vec![6, 6]).unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut plain = GridState::new(&p, init);
        run_pipe_shared(&p, &partition, &mut plain).unwrap();
        let rec = stencilcl_telemetry::Recorder::new();
        let opts = ExecOptions::new().trace(rec.clone());
        let mut traced = GridState::new(&p, init);
        run_pipe_shared_opts(&p, &partition, &mut traced, &opts).unwrap();
        assert_eq!(plain.max_abs_diff(&traced).unwrap(), 0.0);
        let t = rec.finish();
        assert_eq!(t.dropped, 0);
        t.validate_spans()
            .expect("sequential spans are well-formed");
        assert!(t.counters.cells_computed > 0);
        assert_eq!(t.counters.slabs_sent, t.counters.slabs_received);
        for k in 0..4 {
            assert!(t.phase_totals(k).compute > 0.0, "kernel {k} computed");
        }
    }
}
