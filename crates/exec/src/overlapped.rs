use stencilcl_grid::{DesignKind, Extent, Partition, Rect};
use stencilcl_lang::{GridState, Interpreter, Program, StencilFeatures};
use stencilcl_telemetry::{Counter, Disabled, TracePhase, TraceSink};

use crate::domains::DomainPlan;
use crate::engine::{compile_with_env_unroll, Engine};
use crate::integrity::{scan_state, RunLimits};
use crate::options::{EngineKind, ExecOptions};
use crate::window::{extract_window, write_back};
use crate::ExecError;

/// Runs the baseline overlapped-tiling execution (Nacci et al., DAC'13):
/// per fused pass, every tile independently loads its expanded cone
/// footprint from the pass snapshot, computes all fused iterations locally
/// (recomputing the halo overlap its neighbors also compute), and writes its
/// tile back.
///
/// The result must equal [`run_reference`](crate::run_reference) exactly —
/// redundant computation changes *where* values are computed, never *what*
/// they are.
///
/// # Errors
///
/// Returns [`ExecError::BadConfiguration`] unless the partition's design is
/// [`DesignKind::Baseline`], and propagates geometry/interpreter errors.
///
/// # Example
///
/// See the crate-level documentation (`run_pipe_shared` is used the same
/// way).
pub fn run_overlapped(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
) -> Result<(), ExecError> {
    run_overlapped_opts(program, partition, state, &ExecOptions::from_env())
}

/// [`run_overlapped`] with explicit [`ExecOptions`]: engine choice and
/// (optionally) a telemetry recorder. Tile rows in the trace are numbered in
/// region-major tile order.
///
/// # Errors
///
/// Same conditions as [`run_overlapped`].
pub fn run_overlapped_opts(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    if partition.design().kind() != DesignKind::Baseline {
        return Err(ExecError::config(format!(
            "run_overlapped expects a baseline design, got {}",
            partition.design().kind()
        )));
    }
    let limits = opts.limits();
    match &opts.trace {
        Some(rec) => run_fused(
            program,
            partition,
            state,
            opts.engine,
            opts.lanes,
            limits,
            &rec.clone(),
        ),
        None => run_fused(
            program,
            partition,
            state,
            opts.engine,
            opts.lanes,
            limits,
            &Disabled,
        ),
    }
}

/// Pass/region/tile driver for the overlapped executor. (The pipe executors
/// no longer share this loop: they plan once per run and keep persistent
/// windows — see `crate::pool`.)
pub(crate) fn run_fused<S: TraceSink>(
    program: &Program,
    partition: &Partition,
    state: &mut GridState,
    engine_kind: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    sink: &S,
) -> Result<(), ExecError> {
    let features = StencilFeatures::extract(program)?;
    let kind = partition.design().kind();
    let fused = partition.design().fused();
    let grid_rect = Rect::from_extent(&program.extent());
    let updated: Vec<&str> = program.updated_grids();
    let scanned: Vec<String> = updated.iter().map(|s| s.to_string()).collect();
    // Tile index for attributing a health hit to its owning kernel (tiles
    // are numbered in region-major order, matching the trace rows).
    let tile_index: Vec<(usize, Rect)> = if limits.health.enabled() {
        partition
            .region_indices()
            .flat_map(|region| partition.tiles_for_region(&region))
            .enumerate()
            .map(|(k, tile)| (k, tile.rect()))
            .collect()
    } else {
        Vec::new()
    };
    let mut done = 0u64;
    while done < program.iterations {
        limits.check_deadline(done)?;
        let h_eff = fused.min(program.iterations - done);
        let snapshot = state.clone();
        for region in partition.region_indices() {
            for (k, tile) in partition.tiles_for_region(&region).into_iter().enumerate() {
                let dp = DomainPlan::new(&features, &tile, kind, h_eff, &grid_rect)?;
                let buffer = dp.buffer();
                let read_t0 = sink.now();
                let local_program = program.with_extent(window_extent(&buffer)?);
                let mut local = extract_window(&snapshot, program, &local_program, &buffer)?;
                if S::ACTIVE {
                    sink.add(
                        Counter::HaloBytes,
                        buffer.volume()
                            * std::mem::size_of::<f64>() as u64
                            * local_program.grids.len() as u64,
                    );
                    sink.span(k, 0, TracePhase::Read, read_t0, sink.now());
                }
                let compiled;
                let engine = match engine_kind {
                    EngineKind::Interpreted => {
                        Engine::Interpreted(Interpreter::new(&local_program))
                    }
                    EngineKind::Compiled => {
                        compiled = compile_with_env_unroll(&local_program, lanes)?;
                        Engine::Compiled(&compiled)
                    }
                };
                let origin = buffer.lo();
                for i in 1..=h_eff {
                    let compute_t0 = sink.now();
                    for s in 0..program.updates.len() {
                        let global_domain = dp.domain(i, s);
                        let domain = global_domain.translate(&-origin)?;
                        if S::ACTIVE {
                            sink.add(Counter::CellsComputed, domain.volume());
                            // Every cell outside the tile's own output rect
                            // is the trapezoid's redundant halo recompute —
                            // a neighboring tile computes it too.
                            let own = global_domain.intersect(&tile.rect())?.volume();
                            sink.add(Counter::RedundantCells, domain.volume() - own);
                        }
                        engine.apply_statement(&mut local, s, &domain)?;
                    }
                    if S::ACTIVE {
                        sink.span(
                            k,
                            0,
                            TracePhase::Compute {
                                iteration: done + i,
                            },
                            compute_t0,
                            sink.now(),
                        );
                    }
                }
                let write_t0 = sink.now();
                write_back(state, &local, &updated, &origin, &tile.rect())?;
                if S::ACTIVE {
                    sink.span(k, 0, TracePhase::Write, write_t0, sink.now());
                }
            }
        }
        // Health scan of the pass just written; on divergence roll back to
        // the pass-start snapshot — the last healthy barrier.
        if limits.health.enabled() {
            if let Err(e) = scan_state(&limits.health, state, &scanned, &tile_index, done, sink) {
                *state = snapshot;
                return Err(e);
            }
        }
        done += h_eff;
    }
    Ok(())
}

pub(crate) fn window_extent(rect: &Rect) -> Result<Extent, ExecError> {
    let lens: Vec<usize> = (0..rect.dim()).map(|d| rect.len(d) as usize).collect();
    Extent::new(&lens).map_err(ExecError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_reference;
    use stencilcl_grid::{Design, Point};
    use stencilcl_lang::programs;

    fn check(program: &Program, design: &Design) {
        let features = StencilFeatures::extract(program).unwrap();
        let partition = Partition::new(program.extent(), design, &features.growth).unwrap();
        let init = |name: &str, p: &Point| {
            let tag = name.len() as f64;
            let mut v = tag;
            for d in 0..p.dim() {
                v = v * 31.0 + p.coord(d) as f64;
            }
            (v * 0.001).sin()
        };
        let mut expect = GridState::new(program, init);
        run_reference(program, &mut expect).unwrap();
        let mut got = GridState::new(program, init);
        run_overlapped(program, &partition, &mut got).unwrap();
        assert_eq!(
            expect.max_abs_diff(&got).unwrap(),
            0.0,
            "{} diverged from reference",
            program.name
        );
    }

    #[test]
    fn jacobi_1d_matches_reference() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(64))
            .with_iterations(10);
        let d = Design::equal(DesignKind::Baseline, 3, vec![4], vec![8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn jacobi_2d_matches_reference() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(7);
        let d = Design::equal(DesignKind::Baseline, 3, vec![2, 2], vec![8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn fdtd_2d_multi_statement_matches_reference() {
        let p = programs::fdtd_2d()
            .with_extent(Extent::new2(24, 24))
            .with_iterations(5);
        let d = Design::equal(DesignKind::Baseline, 2, vec![2, 2], vec![6, 6]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn hotspot_3d_matches_reference() {
        let p = stencilcl_lang::parse(&programs::hotspot_3d_source(16, 16, 8, 4)).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2, 2, 1], vec![8, 8, 8]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn partial_last_pass_handled() {
        // 10 iterations with h=4: passes of 4, 4, 2.
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(48))
            .with_iterations(10);
        let d = Design::equal(DesignKind::Baseline, 4, vec![2], vec![12]).unwrap();
        check(&p, &d);
    }

    #[test]
    fn rejects_pipe_designs() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        let mut s = GridState::uniform(&p, 0.0);
        assert!(run_overlapped(&p, &partition, &mut s).is_err());
    }
}
