//! Tile-parallel combined spatial+temporal blocking: a work-stealing pool
//! that advances trapezoid tiles through fused time-tiles concurrently.
//!
//! [`run_blocked_reference`](crate::blocking) already trades redundant cone
//! recompute for cache locality, but it is serial: one thread walks every
//! tile of every temporal block, and each block pays a full-grid snapshot
//! clone. This module keeps the same trapezoid geometry ([`DomainPlan`],
//! [`block_tiles`]) and parallelizes it:
//!
//! * **Persistent worker pool** — `threads` workers
//!   ([`ExecPolicy::threads`](crate::ExecPolicy) / `STENCILCL_THREADS`),
//!   each with its own deque. Tiles are placed by affinity
//!   (`tile % workers`, so a tile's cone tends to stay in one core's
//!   cache); an idle worker steals from the back of a victim's deque,
//!   recording a [`TracePhase::TileSteal`] span and bumping
//!   [`Counter::TilesStolen`].
//! * **Dependency tracking instead of snapshots** — the per-block
//!   full-grid clone of the serial driver is replaced by a double buffer
//!   and a tile dependency DAG. Time-tile `τ` reads `buffers[τ % 2]` and
//!   writes `buffers[(τ+1) % 2]`; tile `T` may start time-tile `τ+1` as
//!   soon as `T` and its cone neighborhood `N(T)` — every tile whose rect
//!   the cone footprint touches, closed symmetrically — have finished `τ`.
//!   Because the relation is symmetric, a dispatched task's entire input
//!   footprint is provably final: nothing ever waits on a whole-grid
//!   barrier to *start* computing, only the collector commits one.
//! * **Sliding window of two time-tiles** — only `τ ∈ {floor, floor+1}`
//!   is in flight (`floor` = lowest incomplete time-tile). Completed
//!   `floor+1` results are parked on the collector and spliced only when
//!   `floor` commits, so `buffers[floor % 2]` always holds the exact grid
//!   after `floor` time-tiles: the run's rollback point, health-scan
//!   subject, and durable-checkpoint payload, for free.
//!
//! All grid-buffer access (window extraction at dispatch, result splice at
//! completion) happens on the collector thread; workers only ever own
//! their task's private window. That keeps the whole executor inside
//! `#![forbid(unsafe_code)]` — tile rects are disjoint, but the borrow
//! checker cannot see that, so the collector serializes the (cheap)
//! window copies and the pool parallelizes the (expensive) cone sweeps.
//!
//! A worker panic or evaluation error is contained per task: the task's
//! inputs are still pristine (its readiness proof doubles as an isolation
//! proof — nothing reading a tile's rect can have dispatched past it), so
//! the collector re-extracts and re-enqueues it, up to
//! [`ExecPolicy::max_retries`](crate::ExecPolicy), bit-exact because the
//! cone sweep is deterministic over identical inputs. Results are
//! bit-exact with [`run_reference`](crate::run_reference) by the serial
//! driver's argument: the geometry changes *where* values are computed,
//! never *what* they are.
//!
//! Like the serial driver, the executor carries a model-driven
//! auto-disable gate: when no explicit
//! [`ExecPolicy::block_depth`](crate::ExecPolicy) is set and the cost
//! model predicts the tiled run loses to the plain sweep at the pool's
//! *effective* concurrency (configured threads capped by the host's
//! cores — on a 1-core host that is always 1, and the pool can only
//! timeshare), the run is handed to the plain reference path instead.
//! Forcing a depth bypasses the gate, which is what the tests and the
//! ablation harness do to exercise the machinery deterministically.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use stencilcl_grid::{DesignKind, Extent, Rect, TileInfo};
use stencilcl_lang::{
    CompiledProgram, FusedScratch, GridState, Interpreter, Program, StencilFeatures,
};
use stencilcl_telemetry::{Counter, Disabled, TracePhase, TraceSink};

use crate::blocking::block_tiles;
use crate::domains::DomainPlan;
use crate::engine::compile_with_env_unroll;
use crate::faults::{FaultKind, FaultPlan};
use crate::integrity::scan_state;
use crate::options::{EngineKind, ExecOptions};
use crate::overlapped::window_extent;
use crate::persist::CheckpointWriter;
use crate::supervise::ResumeBase;
use crate::window::{extract_window, write_back};
use crate::ExecError;

/// Tile edge used when [`ExecPolicy::tile`](crate::ExecPolicy) is unset:
/// big enough that the cone sweep dominates the window copies, small
/// enough that a cone's working set stays cache-resident.
pub(crate) const DEFAULT_TILE: usize = 64;

/// Fused depth of one parallel time-tile: shallower than the serial
/// driver's `tile / 2g`, because with many tiles in flight the pool — not
/// the fusion depth — supplies the speedup, so the depth only needs to
/// amortize the window copies while keeping the trapezoid redundancy
/// (linear in `h`) small. Explicit
/// [`ExecPolicy::block_depth`](crate::ExecPolicy) overrides it.
pub(crate) fn parallel_block_depth(tile: usize, growth: u64, iterations: u64) -> u64 {
    if iterations == 0 {
        return 0;
    }
    if growth == 0 {
        return iterations;
    }
    (tile as u64 / (8 * growth)).clamp(1, iterations)
}

/// One fused-iteration statement application, pre-translated into the
/// tile's local window coordinates by the collector.
struct Step {
    statement: usize,
    domain: Rect,
}

/// The precomputed geometry of one (tile, fused depth) pair, shared by
/// every time-tile running the tile at that depth (all full blocks, plus
/// possibly a shallower trailing block).
struct BlockGeom {
    /// Cone input footprint ∩ grid — the window rect extracted per task.
    buffer: Rect,
    /// The program re-extented to the window (interpreter input).
    program: Arc<Program>,
    /// The window's compiled tapes (`None` under the interpreted engine).
    compiled: Option<Arc<CompiledProgram>>,
    /// Per-(iteration, statement) local domains, in execution order.
    steps: Arc<Vec<Step>>,
    /// Cells the steps evaluate in total, and how many fall outside the
    /// tile's own output rect (the trapezoid recompute).
    cells: u64,
    redundant: u64,
}

/// One unit of work: advance `tile` through time-tile `block`.
struct Task {
    tile: usize,
    block: u64,
    attempt: u32,
    /// Global iteration of the task's first fused step (span label).
    first_iteration: u64,
    local: GridState,
    program: Arc<Program>,
    compiled: Option<Arc<CompiledProgram>>,
    steps: Arc<Vec<Step>>,
}

/// Worker → collector completion message.
enum Done {
    Ok {
        tile: usize,
        block: u64,
        local: GridState,
    },
    Failed {
        tile: usize,
        block: u64,
        attempt: u32,
        error: ExecError,
    },
}

/// Shared pool state: per-worker deques plus the park/wake gate.
struct Pool {
    queues: Vec<Mutex<VecDeque<Task>>>,
    gate: Mutex<Gate>,
    cv: Condvar,
}

struct Gate {
    /// Bumped on every push so a worker that scanned empty deques can tell
    /// whether work arrived before it decides to park.
    epoch: u64,
    shutdown: bool,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        Pool {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                epoch: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `task` on its affinity worker's deque and wakes the pool.
    fn push(&self, task: Task) {
        let w = task.tile % self.queues.len();
        self.queues[w].lock().unwrap().push_back(task);
        self.gate.lock().unwrap().epoch += 1;
        self.cv.notify_all();
    }

    fn shutdown(&self) {
        self.gate.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }

    /// Pops the next task for worker `me`: own deque front first, then a
    /// steal from the back of the first non-empty victim.
    fn next_task(&self, me: usize) -> Option<(Task, bool)> {
        if let Some(t) = self.queues[me].lock().unwrap().pop_front() {
            return Some((t, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim].lock().unwrap().pop_back() {
                return Some((t, true));
            }
        }
        None
    }
}

/// Runs `program` on `state` with the tile-parallel blocked executor and
/// env-default options (`STENCILCL_TILE`, `STENCILCL_BLOCK_DEPTH`,
/// `STENCILCL_THREADS`, plus the usual engine/trace/health/checkpoint
/// knobs). Bit-exact with [`run_reference`](crate::run_reference).
///
/// # Errors
///
/// Same conditions as [`run_reference`](crate::run_reference), plus
/// [`ExecError::RetriesExhausted`] when one tile task keeps failing past
/// the retry budget. On any error `state` holds the grid as of the last
/// committed time-tile barrier (a consistent partial result).
pub fn run_blocked_parallel(program: &Program, state: &mut GridState) -> Result<(), ExecError> {
    run_blocked_parallel_opts(program, state, &ExecOptions::from_env())
}

/// [`run_blocked_parallel`] with explicit [`ExecOptions`]: tile edge from
/// [`ExecPolicy::tile`](crate::ExecPolicy) (64 when unset), fused depth
/// from [`ExecPolicy::block_depth`](crate::ExecPolicy) (cone math when
/// unset), pool width from [`ExecPolicy::threads`](crate::ExecPolicy)
/// (the host's available parallelism when unset, capped at the tile
/// count). When `block_depth` is unset the model gate may route the run
/// to the plain sweep (see the module docs); setting it forces the tiled
/// machinery.
///
/// # Errors
///
/// Same conditions as [`run_blocked_parallel`].
pub fn run_blocked_parallel_opts(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    dispatch(program, state, opts, &Arc::new(FaultPlan::new()))
}

/// [`run_blocked_parallel_opts`] with a deterministic [`FaultPlan`]
/// injected into the tile workers — the chaos-testing entry point. The
/// plan's trigger coordinates are `(tile index, time-tile index)`.
///
/// # Errors
///
/// Same conditions as [`run_blocked_parallel`].
#[cfg(feature = "fault-injection")]
pub fn run_blocked_parallel_injected(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> Result<(), ExecError> {
    dispatch(program, state, opts, faults)
}

/// Monomorphizes the run against the chosen telemetry sink.
fn dispatch(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
) -> Result<(), ExecError> {
    match &opts.trace {
        Some(rec) => run_impl(program, state, opts, faults, &rec.clone()),
        None => run_impl(program, state, opts, faults, &Disabled),
    }
}

/// Collector-side run driver: plans geometry, spawns the pool, dispatches
/// ready tasks, commits time-tile barriers.
fn run_impl<S: TraceSink>(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
    faults: &Arc<FaultPlan>,
    sink: &S,
) -> Result<(), ExecError> {
    let tile = opts.policy.tile.unwrap_or(DEFAULT_TILE);
    if tile == 0 {
        return Err(ExecError::config("temporal tile size must be at least 1"));
    }
    if program.iterations == 0 {
        return Ok(());
    }
    let limits = opts.limits();
    limits.check_deadline(0)?;

    let features = StencilFeatures::extract(program)?;
    let grid_rect = Rect::from_extent(&program.extent());
    let tiles = block_tiles(&grid_rect, tile)?;
    let n = tiles.len();
    let g = (0..features.dim)
        .map(|d| features.growth.lo(d).max(features.growth.hi(d)))
        .max()
        .unwrap_or(0);
    let h = match opts.policy.block_depth {
        Some(depth) => depth.clamp(1, program.iterations),
        None => parallel_block_depth(tile, g, program.iterations),
    };
    let nblocks = program.iterations.div_ceil(h);
    let tail = program.iterations - (nblocks - 1) * h;
    let workers = opts
        .policy
        .threads
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |p| p.get()))
        .clamp(1, n);

    // Model-driven auto-disable, the parallel twin of the serial driver's
    // gate (see `crate::blocking`): with no explicit depth override, hand
    // the run to the plain sweep when tiled execution is predicted to
    // lose. The prediction uses the pool's *effective* concurrency —
    // threads beyond the host's cores timeshare, they don't compute — and
    // a single effective worker is an unconditional fallback: without
    // parallel tile compute the pool, the window copies, and the
    // dependency tracking are pure overhead on top of what
    // `run_blocked_reference` already does.
    if opts.policy.block_depth.is_none() {
        let cores = thread::available_parallelism().map_or(1, |p| p.get());
        let effective = workers.min(cores);
        let host = stencilcl_model::HostParams::default();
        let plain = stencilcl_model::predict(&stencilcl_model::plain_model(&features, &host));
        let blocked = stencilcl_model::parallel_total(
            &stencilcl_model::blocked_model(&features, tile as u64, h, &host),
            effective,
        );
        if effective < 2 || blocked >= plain.total {
            return crate::reference::run_plain_reference(program, state, opts);
        }
    }

    // Per-tile geometry at full depth (and at the shallower tail depth
    // when the run length is not a multiple of `h`). Window programs and
    // compiled tapes are deduplicated by window extent — interior tiles
    // all share one.
    let mut cache: HashMap<Extent, (Arc<Program>, Option<Arc<CompiledProgram>>)> = HashMap::new();
    let mut geom = |t: &TileInfo, depth: u64| -> Result<BlockGeom, ExecError> {
        block_geom(
            program,
            &features,
            t,
            depth,
            &grid_rect,
            opts.engine,
            opts.lanes,
            &mut cache,
        )
    };
    let full: Vec<BlockGeom> = tiles.iter().map(|t| geom(t, h)).collect::<Result<_, _>>()?;
    let tail_geom: Option<Vec<BlockGeom>> = if tail != h {
        Some(
            tiles
                .iter()
                .map(|t| geom(t, tail))
                .collect::<Result<_, _>>()?,
        )
    } else {
        None
    };
    drop(cache);
    let geom_at = |tile: usize, block: u64| -> &BlockGeom {
        match &tail_geom {
            Some(tg) if block == nblocks - 1 => &tg[tile],
            _ => &full[tile],
        }
    };

    // Symmetric cone neighborhood from the *maximal* footprint: U ∈ N(T)
    // iff either tile's footprint touches the other's output rect. The
    // tail footprint is a subset of the full one, so this one conservative
    // relation covers every time-tile.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in a + 1..n {
            let touches = !full[a].buffer.intersect(&tiles[b].rect())?.is_empty()
                || !full[b].buffer.intersect(&tiles[a].rect())?.is_empty();
            if touches {
                neighbors[a].push(b);
                neighbors[b].push(a);
            }
        }
    }

    let updated: Vec<&str> = program.updated_grids();
    let scanned: Vec<String> = updated.iter().map(|s| s.to_string()).collect();
    let tile_index: Vec<(usize, Rect)> = if limits.health.enabled() {
        tiles.iter().map(|t| (t.kernel(), t.rect())).collect()
    } else {
        Vec::new()
    };
    let ckpt = CheckpointWriter::from_options(
        program,
        opts,
        &ResumeBase::default(),
        limits.deadline,
        faults,
    );
    if let Some(w) = &ckpt {
        w.begin_attempt(0);
    }

    // Double buffer: time-tile τ reads buffers[τ % 2] and writes the
    // other. Both start as the input grid, so every splice lands on a
    // complete copy and untouched cells (read-only grids, grid edges) are
    // always current in both.
    let mut buffers = [state.clone(), state.clone()];
    // The newest whole-grid-consistent time-tile: buffers[committed % 2]
    // is exact after `committed` time-tiles at all times (the deferred
    // splice below preserves this), which makes it the rollback target.
    let mut committed: u64 = 0;

    let pool = Pool::new(workers);
    let (done_tx, done_rx) = unbounded::<Done>();

    let result = thread::scope(|scope| {
        let run = (|| -> Result<(), ExecError> {
            for w in 0..workers {
                let pool = &pool;
                let faults = Arc::clone(faults);
                let done = done_tx.clone();
                let sink = sink.clone();
                thread::Builder::new()
                    .name(format!("stencil-tile-{w}"))
                    .spawn_scoped(scope, move || worker_loop(w, pool, &faults, &done, &sink))
                    .map_err(|e| ExecError::config(format!("failed to spawn tile worker: {e}")))?;
            }

            let enqueue = |buffers: &[GridState; 2],
                           tile: usize,
                           block: u64,
                           attempt: u32|
             -> Result<(), ExecError> {
                let geom = geom_at(tile, block);
                let src = (block % 2) as usize;
                let read_t0 = sink.now();
                let local = extract_window(&buffers[src], program, &geom.program, &geom.buffer)?;
                if S::ACTIVE {
                    sink.add(
                        Counter::HaloBytes,
                        geom.buffer.volume()
                            * std::mem::size_of::<f64>() as u64
                            * geom.program.grids.len() as u64,
                    );
                    sink.span(tile, block as usize, TracePhase::Read, read_t0, sink.now());
                    // Counted at dispatch: a retried task honestly pays
                    // (and reports) its cells twice.
                    sink.add(Counter::CellsComputed, geom.cells);
                    sink.add(Counter::RedundantCells, geom.redundant);
                }
                pool.push(Task {
                    tile,
                    block,
                    attempt,
                    first_iteration: block * h + 1,
                    local,
                    program: Arc::clone(&geom.program),
                    compiled: geom.compiled.clone(),
                    steps: Arc::clone(&geom.steps),
                });
                Ok(())
            };
            let splice = |buffers: &mut [GridState; 2],
                          tile: usize,
                          block: u64,
                          local: &GridState|
             -> Result<(), ExecError> {
                let geom = geom_at(tile, block);
                let dst = ((block + 1) % 2) as usize;
                let write_t0 = sink.now();
                write_back(
                    &mut buffers[dst],
                    local,
                    &updated,
                    &geom.buffer.lo(),
                    &tiles[tile].rect(),
                )?;
                if S::ACTIVE {
                    sink.span(
                        tile,
                        block as usize,
                        TracePhase::Write,
                        write_t0,
                        sink.now(),
                    );
                }
                Ok(())
            };

            // Collector bookkeeping for the two in-flight time-tiles.
            let mut floor: u64 = 0;
            let mut finished_floor = vec![false; n];
            let mut finished_next = vec![false; n];
            let mut dispatched_next = vec![false; n];
            let mut floor_left = n;
            // Completed floor+1 windows parked until the floor barrier
            // commits, keeping buffers[floor % 2] pristine.
            let mut parked: Vec<(usize, GridState)> = Vec::new();

            for t in 0..n {
                enqueue(&buffers, t, 0, 0)?;
            }

            loop {
                let msg = done_rx
                    .recv()
                    .map_err(|_| ExecError::config("tile pool hung up unexpectedly"))?;
                match msg {
                    Done::Failed {
                        tile,
                        block,
                        attempt,
                        error,
                    } => {
                        if attempt >= opts.policy.max_retries {
                            return Err(ExecError::RetriesExhausted {
                                attempts: attempt + 1,
                                last: Box::new(error),
                            });
                        }
                        // The failed task's inputs are provably untouched
                        // (see the module docs), so a bit-exact retry is
                        // just a re-extract and re-enqueue.
                        if S::ACTIVE {
                            sink.add(Counter::Retries, 1);
                        }
                        enqueue(&buffers, tile, block, attempt + 1)?;
                    }
                    Done::Ok { tile, block, local } => {
                        if block == floor {
                            splice(&mut buffers, tile, block, &local)?;
                            finished_floor[tile] = true;
                            floor_left -= 1;
                            // Anything whose whole cone neighborhood just
                            // completed `floor` may start `floor + 1`.
                            if floor + 1 < nblocks {
                                for &v in std::iter::once(&tile).chain(&neighbors[tile]) {
                                    if !dispatched_next[v]
                                        && finished_floor[v]
                                        && neighbors[v].iter().all(|&u| finished_floor[u])
                                    {
                                        dispatched_next[v] = true;
                                        enqueue(&buffers, v, floor + 1, 0)?;
                                    }
                                }
                            }
                        } else {
                            debug_assert_eq!(block, floor + 1);
                            finished_next[tile] = true;
                            parked.push((tile, local));
                        }
                    }
                }

                // Commit barriers while complete time-tiles are queued up
                // (several can mature at once when the whole next wave was
                // already parked).
                while floor_left == 0 {
                    let done_iters = ((floor + 1) * h).min(program.iterations);
                    let dst = ((floor + 1) % 2) as usize;
                    if limits.health.enabled() {
                        scan_state(
                            &limits.health,
                            &buffers[dst],
                            &scanned,
                            &tile_index,
                            floor * h,
                            sink,
                        )?;
                    }
                    if let Some(w) = &ckpt {
                        w.at_barrier(&buffers[dst], done_iters, floor + 1, sink);
                    }
                    floor += 1;
                    committed = floor;
                    if floor == nblocks {
                        return Ok(());
                    }
                    limits.check_deadline(done_iters)?;
                    for (tile, local) in parked.drain(..) {
                        splice(&mut buffers, tile, floor, &local)?;
                    }
                    std::mem::swap(&mut finished_floor, &mut finished_next);
                    finished_next.iter_mut().for_each(|b| *b = false);
                    dispatched_next.iter_mut().for_each(|b| *b = false);
                    floor_left = finished_floor.iter().filter(|&&f| !f).count();
                    if floor + 1 < nblocks {
                        for v in 0..n {
                            if !dispatched_next[v]
                                && finished_floor[v]
                                && neighbors[v].iter().all(|&u| finished_floor[u])
                            {
                                dispatched_next[v] = true;
                                enqueue(&buffers, v, floor + 1, 0)?;
                            }
                        }
                    }
                }
            }
        })();
        // Always reached (success, collector error, or spawn error):
        // workers drain any leftover queue entries, see the flag, and exit
        // before the scope joins them.
        pool.shutdown();
        run
    });
    drop(done_tx);

    // buffers[committed % 2] invariantly holds the newest committed
    // barrier: the final state on success (committed == nblocks), a
    // consistent partial result on failure — like the serial guarded
    // paths, a failed run still hands back whole iterations.
    std::mem::swap(state, &mut buffers[(committed % 2) as usize]);
    result?;
    if let Some(w) = &ckpt {
        w.finalize(state, nblocks, sink);
    }
    Ok(())
}

/// Builds one tile's per-depth geometry: cone footprint, window program
/// (deduplicated by extent), compiled tapes, and the fused step list in
/// window-local coordinates.
#[allow(clippy::too_many_arguments)]
fn block_geom(
    program: &Program,
    features: &StencilFeatures,
    t: &TileInfo,
    depth: u64,
    grid_rect: &Rect,
    engine: EngineKind,
    lanes: Option<usize>,
    cache: &mut HashMap<Extent, (Arc<Program>, Option<Arc<CompiledProgram>>)>,
) -> Result<BlockGeom, ExecError> {
    let dp = DomainPlan::new(features, t, DesignKind::Baseline, depth, grid_rect)?;
    let buffer = dp.buffer();
    let extent = window_extent(&buffer)?;
    let (local_program, compiled) = match cache.get(&extent) {
        Some(entry) => entry.clone(),
        None => {
            let lp = Arc::new(program.with_extent(extent));
            let cp = match engine {
                EngineKind::Compiled => Some(Arc::new(compile_with_env_unroll(&lp, lanes)?)),
                EngineKind::Interpreted => None,
            };
            cache.insert(extent, (Arc::clone(&lp), cp.clone()));
            (lp, cp)
        }
    };
    let origin = buffer.lo();
    let mut steps = Vec::with_capacity(depth as usize * program.updates.len());
    let mut cells = 0u64;
    let mut redundant = 0u64;
    for i in 1..=depth {
        for s in 0..program.updates.len() {
            let global = dp.domain(i, s);
            let domain = global.translate(&-origin)?;
            cells += domain.volume();
            redundant += domain.volume() - global.intersect(&t.rect())?.volume();
            steps.push(Step {
                statement: s,
                domain,
            });
        }
    }
    Ok(BlockGeom {
        buffer,
        program: local_program,
        compiled,
        steps: Arc::new(steps),
        cells,
        redundant,
    })
}

/// One pool worker: drain the own deque, steal when it runs dry, park on
/// the gate when the whole pool is dry.
fn worker_loop<S: TraceSink>(
    me: usize,
    pool: &Pool,
    faults: &FaultPlan,
    done: &Sender<Done>,
    sink: &S,
) {
    let mut scratch = FusedScratch::new();
    loop {
        let epoch = pool.gate.lock().unwrap().epoch;
        let scan_t0 = sink.now();
        match pool.next_task(me) {
            Some((task, stolen)) => {
                if stolen && S::ACTIVE {
                    sink.add(Counter::TilesStolen, 1);
                    sink.span(
                        task.tile,
                        task.block as usize,
                        TracePhase::TileSteal,
                        scan_t0,
                        sink.now(),
                    );
                }
                if run_task(task, faults, done, sink, &mut scratch).is_err() {
                    // Collector hung up: the run is over.
                    return;
                }
            }
            None => {
                let gate = pool.gate.lock().unwrap();
                if gate.shutdown {
                    return;
                }
                if gate.epoch == epoch {
                    // Nothing arrived since the scan: park until a push
                    // (or shutdown) bumps the gate.
                    drop(pool.cv.wait(gate).unwrap());
                }
            }
        }
    }
}

/// Executes one task with panic containment and reports the outcome. `Err`
/// means the completion channel is closed (collector gone).
fn run_task<S: TraceSink>(
    task: Task,
    faults: &FaultPlan,
    done: &Sender<Done>,
    sink: &S,
    scratch: &mut FusedScratch,
) -> Result<(), ()> {
    let (tile, block, attempt, first) = (task.tile, task.block, task.attempt, task.first_iteration);
    let t0 = sink.now();
    // AssertUnwindSafe: the scratch is fully cleared before reuse and the
    // task is consumed either way, so a caught panic leaves no state a
    // later task can observe.
    let outcome = catch_unwind(AssertUnwindSafe(|| compute(task, faults, scratch)));
    let msg = match outcome {
        Ok(Ok(local)) => {
            if S::ACTIVE {
                sink.span(
                    tile,
                    block as usize,
                    TracePhase::TileCompute { iteration: first },
                    t0,
                    sink.now(),
                );
            }
            Done::Ok { tile, block, local }
        }
        Ok(Err(error)) => Done::Failed {
            tile,
            block,
            attempt,
            error,
        },
        Err(_) => Done::Failed {
            tile,
            block,
            attempt,
            error: ExecError::WorkerPanic { kernel: tile },
        },
    };
    done.send(msg).map_err(|_| ())
}

/// The trapezoid cone sweep itself: every fused step applied to the task's
/// private window.
fn compute(
    task: Task,
    faults: &FaultPlan,
    scratch: &mut FusedScratch,
) -> Result<GridState, ExecError> {
    match faults.fire(task.tile, task.block) {
        Some(FaultKind::WorkerPanic) => panic!("injected tile-worker panic"),
        Some(FaultKind::DelayedSlab(ms)) => thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
    let Task {
        mut local,
        program,
        compiled,
        steps,
        ..
    } = task;
    match &compiled {
        Some(cp) => {
            for step in steps.iter() {
                cp.apply_statement_with(&mut local, step.statement, &step.domain, scratch)?;
            }
        }
        None => {
            let interp = Interpreter::new(&program);
            for step in steps.iter() {
                interp.apply_statement(&mut local, step.statement, &step.domain)?;
            }
        }
    }
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_reference, ExecPolicy};
    use stencilcl_grid::{Extent, Point};
    use stencilcl_lang::programs;
    use stencilcl_telemetry::Recorder;

    fn init(name: &str, p: &Point) -> f64 {
        let mut v = name.len() as f64 + 2.0;
        for d in 0..p.dim() {
            v = v * 23.0 + p.coord(d) as f64;
        }
        (v * 0.0021).sin()
    }

    /// An explicit `block_depth` bypasses the model gate, so these tests
    /// exercise the tiled machinery on any host (the gate otherwise falls
    /// back to the plain sweep on cache-resident grids and 1-core boxes).
    fn opts(tile: usize, threads: usize, depth: u64) -> ExecOptions {
        ExecOptions::new().policy(ExecPolicy {
            tile: Some(tile),
            threads: Some(threads),
            block_depth: Some(depth),
            ..ExecPolicy::default()
        })
    }

    #[test]
    fn parallel_block_depth_scales_and_clamps() {
        assert_eq!(parallel_block_depth(64, 1, 100), 8);
        assert_eq!(parallel_block_depth(64, 2, 100), 4);
        assert_eq!(parallel_block_depth(8, 2, 100), 1, "never below one");
        assert_eq!(parallel_block_depth(1024, 1, 5), 5, "clamped to the run");
        assert_eq!(parallel_block_depth(8, 0, 7), 7, "pointwise fuses all");
        assert_eq!(parallel_block_depth(8, 1, 0), 0);
    }

    #[test]
    fn parallel_blocked_is_bit_exact_with_the_plain_loop() {
        for (p, tile, depth) in [
            (
                programs::jacobi_2d()
                    .with_extent(Extent::new2(33, 29))
                    .with_iterations(9),
                8,
                3,
            ),
            (
                programs::fdtd_2d()
                    .with_extent(Extent::new2(24, 24))
                    .with_iterations(5),
                16,
                2,
            ),
            (
                programs::jacobi_1d()
                    .with_extent(Extent::new1(64))
                    .with_iterations(10),
                8,
                4,
            ),
        ] {
            let mut expect = GridState::new(&p, init);
            run_reference(&p, &mut expect).unwrap();
            for threads in [1, 3] {
                let mut got = GridState::new(&p, init);
                run_blocked_parallel_opts(&p, &mut got, &opts(tile, threads, depth)).unwrap();
                assert_eq!(
                    expect.max_abs_diff(&got).unwrap(),
                    0.0,
                    "{} tile={tile} threads={threads} diverged",
                    p.name
                );
            }
        }
    }

    #[test]
    fn every_engine_lane_width_and_depth_agrees() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(31, 27))
            .with_iterations(7);
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        for depth in [1, 3, 7] {
            for (engine, lanes) in [
                (EngineKind::Compiled, Some(1)),
                (EngineKind::Compiled, Some(4)),
                (EngineKind::Interpreted, None),
            ] {
                let mut o = ExecOptions::new().engine(engine).policy(ExecPolicy {
                    tile: Some(8),
                    threads: Some(2),
                    block_depth: Some(depth),
                    ..ExecPolicy::default()
                });
                if let Some(l) = lanes {
                    o = o.lanes(l);
                }
                let mut got = GridState::new(&p, init);
                run_blocked_parallel_opts(&p, &mut got, &o).unwrap();
                assert_eq!(
                    expect.max_abs_diff(&got).unwrap(),
                    0.0,
                    "engine={engine:?} lanes={lanes:?} depth={depth} diverged"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes_survive() {
        // Tile larger than the grid: one tile, no neighbors, pure fusion.
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(16, 16))
            .with_iterations(6);
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        let mut got = GridState::new(&p, init);
        run_blocked_parallel_opts(&p, &mut got, &opts(1024, 4, 6)).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);

        // Zero iterations: a no-op even with an oversubscribed pool.
        let p0 = p.clone().with_iterations(0);
        let mut zero = GridState::new(&p0, init);
        run_blocked_parallel_opts(&p0, &mut zero, &opts(4, 64, 4)).unwrap();
        assert_eq!(zero.max_abs_diff(&GridState::new(&p0, init)).unwrap(), 0.0);

        // 1-wide tiles: every tile is all halo, more threads than cores.
        let skinny = programs::jacobi_1d()
            .with_extent(Extent::new1(17))
            .with_iterations(4);
        let mut expect = GridState::new(&skinny, init);
        run_reference(&skinny, &mut expect).unwrap();
        let mut got = GridState::new(&skinny, init);
        run_blocked_parallel_opts(&skinny, &mut got, &opts(1, 3, 2)).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
    }

    #[test]
    fn counters_account_the_redundant_cone_work() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(8);
        let rec = Recorder::new();
        let o = ExecOptions::new().trace(rec.clone()).policy(ExecPolicy {
            tile: Some(8),
            threads: Some(2),
            block_depth: Some(4),
            ..ExecPolicy::default()
        });
        let mut got = GridState::new(&p, init);
        run_blocked_parallel_opts(&p, &mut got, &o).unwrap();
        let t = rec.finish();
        assert!(t.counters.redundant_cells > 0, "8x8 tiles must recompute");
        assert!(t.counters.redundant_cells < t.counters.cells_computed);
        // Useful work is invariant under blocking: every interior cell
        // exactly once per iteration (jacobi_2d updates the 30x30 core).
        assert_eq!(
            t.counters.cells_computed - t.counters.redundant_cells,
            30 * 30 * 8
        );
        assert!(t.counters.halo_bytes > 0);
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
    }

    #[test]
    fn an_oversubscribed_pool_still_converges_and_traces() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(64, 64))
            .with_iterations(12);
        let rec = Recorder::new();
        let o = ExecOptions::new().trace(rec.clone()).policy(ExecPolicy {
            tile: Some(8),
            threads: Some(8),
            block_depth: Some(2),
            ..ExecPolicy::default()
        });
        let mut got = GridState::new(&p, init);
        run_blocked_parallel_opts(&p, &mut got, &o).unwrap();
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
        // Stealing is timing-dependent, so assert only the sound parts:
        // the pool did the work and the counters stayed coherent.
        let t = rec.finish();
        assert!(t.counters.cells_computed > 0);
        assert!(t.counters.redundant_cells < t.counters.cells_computed);
    }

    #[test]
    fn zero_tile_is_rejected() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(2);
        let mut s = GridState::uniform(&p, 0.0);
        let err = run_blocked_parallel_opts(&p, &mut s, &opts(0, 2, 1)).unwrap_err();
        assert!(err.to_string().contains("tile size"));
    }

    #[test]
    fn model_gate_hands_cache_resident_runs_to_the_plain_sweep() {
        // No explicit block_depth: the gate predicts the tiled machinery
        // loses on a cache-resident grid (and unconditionally on a 1-core
        // host) and must route to the plain sweep — bit-exact, and with no
        // tile spans or cone counters recorded.
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(48, 48))
            .with_iterations(6);
        let rec = Recorder::new();
        let o = ExecOptions::new().trace(rec.clone()).policy(ExecPolicy {
            tile: Some(16),
            threads: Some(2),
            ..ExecPolicy::default()
        });
        let mut got = GridState::new(&p, init);
        run_blocked_parallel_opts(&p, &mut got, &o).unwrap();
        let mut expect = GridState::new(&p, init);
        run_reference(&p, &mut expect).unwrap();
        assert_eq!(expect.max_abs_diff(&got).unwrap(), 0.0);
        let t = rec.finish();
        assert_eq!(
            t.counters.cells_computed, 0,
            "fallback must not record cone-sweep counters"
        );
        assert_eq!(t.counters.tiles_stolen, 0);
        assert!(
            !t.spans
                .iter()
                .any(|s| matches!(s.phase, TracePhase::TileCompute { .. })),
            "fallback must not record tile spans"
        );
    }
}
