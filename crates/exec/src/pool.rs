use stencilcl_grid::{FaceKind, Partition, Rect};
use stencilcl_lang::{CompiledProgram, GridState, Program, StencilFeatures};
use stencilcl_telemetry::{Counter, TraceSink};

use crate::domains::{reject_diagonals, DomainPlan};
use crate::engine::{compile_with_env_unroll, Engine};
use crate::overlapped::window_extent;
use crate::window::halo_ring;
use crate::ExecError;

/// Bounded capacity of each pipe channel — the stand-in for the FPGA FIFO
/// depth. Capacity 2 lets a producer run one statement ahead of a slow
/// consumer without unbounded buffering.
pub(crate) const PIPE_CAPACITY: usize = 2;

/// One boundary-slab message: the values of the statement's target array
/// over the agreed overlap region, tagged with its global
/// `(iteration, statement)` step for protocol checking. The iteration
/// component counts from the start of the run (`done + i`), so reusing one
/// channel across every fused block and region still detects skew.
///
/// With integrity on ([`ExecOptions::integrity`](crate::ExecOptions)),
/// [`Slab::seal`] additionally stamps an FNV-1a-64 checksum over the
/// payload bits, the step tag, and the channel's sequence number; the
/// splice site recomputes it so a payload corrupted in flight surfaces as
/// [`ExecError::SlabCorrupt`](crate::ExecError) instead of splicing
/// silently into a neighbor's halo.
#[derive(Debug)]
pub(crate) struct Slab {
    pub step: (u64, usize),
    pub values: Vec<f64>,
    /// `Some(fnv1a(seq, step, values))` when the run seals slabs; `None`
    /// on the zero-overhead default path.
    pub checksum: Option<u64>,
}

impl Slab {
    /// Builds a slab for the given `(iteration, statement)` step. With
    /// `corrupt` set (the `CorruptStepTag` injected fault), the iteration
    /// component is skewed by one so the receiver's [`check_slab_step`]
    /// protocol check must trip.
    pub fn tagged(step: (u64, usize), values: Vec<f64>, corrupt: bool) -> Slab {
        let step = if corrupt {
            (step.0.wrapping_add(1), step.1)
        } else {
            step
        };
        Slab {
            step,
            values,
            checksum: None,
        }
    }

    /// Seals the slab with the channel's send-side sequence number.
    #[must_use]
    pub fn seal(mut self, seq: u64) -> Slab {
        self.checksum = Some(crate::integrity::slab_checksum(
            seq,
            self.step,
            &self.values,
        ));
        self
    }

    /// Flips the lowest mantissa bit of the first payload value — the
    /// `CorruptPayload` injected fault. Applied *after* [`Slab::seal`], so
    /// the receiver's checksum recomputation must mismatch.
    #[must_use]
    pub fn corrupt_payload(mut self) -> Slab {
        if let Some(v) = self.values.first_mut() {
            *v = f64::from_bits(v.to_bits() ^ 1);
        }
        self
    }
}

/// A directed slab exchange within one region: after every statement,
/// kernel `from` sends the target array's values over `overlap` (absolute
/// coordinates) to kernel `to`, which splices them into its halo.
#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub from: usize,
    pub to: usize,
    pub overlap: Rect,
}

/// Geometry for one distinct fused-block depth. A run has at most two: the
/// design's fused depth and the remainder of the final partial block.
#[derive(Debug)]
pub(crate) struct DepthPlans {
    /// The fused depth these plans describe.
    pub h: u64,
    /// `plans[region][kernel]`.
    pub plans: Vec<Vec<DomainPlan>>,
    /// `edges[region]`, in discovery order (kernel-major, then face order).
    /// Splice order must match between the sequential and threaded
    /// executors: halo corners can be covered by two neighbors' slabs, so
    /// the last writer decides the (unconsumed but compared) value.
    pub edges: Vec<Vec<Edge>>,
    /// `domains[region][kernel][(i - 1) * stmts + s]`: the statement domain
    /// of fused level `i`, statement `s` — already translated into the
    /// kernel's local window **and clipped to the statement's updatable
    /// interior**. Hoisting the per-statement
    /// `domain.intersect(statement_domain)` here means it happens once per
    /// run instead of once per fused block.
    pub domains: Vec<Vec<Vec<Rect>>>,
}

impl DepthPlans {
    /// The pre-clipped local domain of fused level `i` (1-based), statement
    /// `s`, for `(region, kernel)`. `stmts` is the program's statement
    /// count.
    pub fn local_domain(
        &self,
        region: usize,
        kernel: usize,
        i: u64,
        s: usize,
        stmts: usize,
    ) -> &Rect {
        &self.domains[region][kernel][(i as usize - 1) * stmts + s]
    }
}

/// Everything the pipe executors precompute once per run.
///
/// The plan fixes the invariants the persistent-window executors rely on:
///
/// * `windows[r][k]` is the buffer of the **deepest** pass; every
///   shallower pass's buffer, domains, and overlaps are contained in it,
///   so one local window per `(region, kernel)` — sized and rooted at the
///   deepest buffer — serves every block of the run.
/// * `rings[r][k]` decomposes `window ∖ tile`; those are exactly the local
///   cells whose values a block leaves stale (intermediate trapezoid
///   values), so refreshing them from the global grid restores the full
///   pre-block window without re-reading the tile interior.
/// * `edges` are identical across depths in *structure* (which pairs
///   exchange); only the overlap rects differ, so channels keyed by the
///   directed pair can be created once and reused for the whole run.
#[derive(Debug)]
pub(crate) struct PipelinePlan {
    /// Region indices in execution order.
    pub regions: Vec<Vec<usize>>,
    /// `tiles[region][kernel]`: the output footprint written back per block.
    pub tiles: Vec<Vec<Rect>>,
    /// `windows[region][kernel]`: deepest-pass buffer, the persistent local
    /// window's absolute footprint (its `lo()` is the window origin).
    pub windows: Vec<Vec<Rect>>,
    /// `rings[region][kernel]`: `window ∖ tile` as disjoint rects.
    pub rings: Vec<Vec<Vec<Rect>>>,
    /// `local_programs[region][kernel]`: the program re-extented to the
    /// window, for building interpreters over local windows.
    pub local_programs: Vec<Vec<Program>>,
    /// `compiled[region][kernel]`: the local program lowered to bytecode
    /// kernels, once per run — the functional analogue of the code
    /// generator's per-tile kernel specialization.
    pub compiled: Vec<Vec<CompiledProgram>>,
    /// Number of update statements per iteration.
    pub stmts: usize,
    /// Distinct pass depths, deepest first.
    pub depths: Vec<DepthPlans>,
    /// Every directed kernel pair with an edge in any region (the set is
    /// depth-independent), in deterministic discovery order.
    pub pairs: Vec<(usize, usize)>,
    /// Names of the grids update statements write.
    pub updated: Vec<String>,
    /// Total stencil iterations of the run.
    pub iterations: u64,
    /// The design's fused depth clamped to the run length.
    pub fused: u64,
}

/// The sequence of distinct fused-block depths for a run: the clamped
/// design depth, then the final partial block's remainder if any.
pub(crate) fn pass_depths(fused: u64, iterations: u64) -> Vec<u64> {
    if iterations == 0 {
        return Vec::new();
    }
    let deepest = fused.min(iterations);
    let rem = iterations % deepest;
    if rem == 0 {
        vec![deepest]
    } else {
        vec![deepest, rem]
    }
}

impl PipelinePlan {
    /// Builds the full per-run plan, validating the design kind and stencil
    /// shape exactly like the original per-pass executors did. `lanes` is
    /// the run's explicit lane width for the compiled tape walk (`None`
    /// defers to `STENCILCL_LANES` / the compiler default).
    pub fn new(
        program: &Program,
        partition: &Partition,
        lanes: Option<usize>,
    ) -> Result<Self, ExecError> {
        let features = StencilFeatures::extract(program)?;
        if !partition.design().kind().uses_pipes() {
            return Err(ExecError::config(
                "pipe executors expect a pipe-shared or heterogeneous design",
            ));
        }
        reject_diagonals(&features)?;

        let kind = partition.design().kind();
        let grid_rect = Rect::from_extent(&program.extent());
        let updated: Vec<String> = program
            .updated_grids()
            .into_iter()
            .map(str::to_string)
            .collect();
        let iterations = program.iterations;
        let hs = pass_depths(partition.design().fused(), iterations);
        let regions: Vec<Vec<usize>> = partition.region_indices().collect();

        let mut depths = Vec::with_capacity(hs.len());
        for &h in &hs {
            let mut plans = Vec::with_capacity(regions.len());
            let mut edges = Vec::with_capacity(regions.len());
            for region in &regions {
                let tiles = partition.tiles_for_region(region);
                let region_plans: Vec<DomainPlan> = tiles
                    .iter()
                    .map(|t| DomainPlan::new(&features, t, kind, h, &grid_rect))
                    .collect::<Result<_, _>>()?;
                let mut region_edges = Vec::new();
                for (t, tile) in tiles.iter().enumerate() {
                    for f in tile.faces() {
                        if let FaceKind::Shared { neighbor } = f.kind {
                            let overlap = region_plans[neighbor]
                                .halo_rect(f.axis, !f.high)
                                .intersect(&region_plans[t].buffer())?;
                            region_edges.push(Edge {
                                from: t,
                                to: neighbor,
                                overlap,
                            });
                        }
                    }
                }
                plans.push(region_plans);
                edges.push(region_edges);
            }
            depths.push(DepthPlans {
                h,
                plans,
                edges,
                domains: Vec::new(),
            });
        }

        let (mut tiles, mut windows, mut rings, mut local_programs, mut compiled, mut pairs) = (
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        );
        if let Some(deepest) = depths.first() {
            for (r, region) in regions.iter().enumerate() {
                let region_tiles: Vec<Rect> = partition
                    .tiles_for_region(region)
                    .iter()
                    .map(|t| t.rect())
                    .collect();
                let region_windows: Vec<Rect> =
                    deepest.plans[r].iter().map(DomainPlan::buffer).collect();
                let region_rings: Vec<Vec<Rect>> = region_windows
                    .iter()
                    .zip(&region_tiles)
                    .map(|(w, t)| halo_ring(w, t))
                    .collect::<Result<_, _>>()?;
                let region_programs: Vec<Program> = region_windows
                    .iter()
                    .map(|w| Ok(program.with_extent(window_extent(w)?)))
                    .collect::<Result<_, ExecError>>()?;
                let region_compiled: Vec<CompiledProgram> = region_programs
                    .iter()
                    .map(|p| compile_with_env_unroll(p, lanes))
                    .collect::<Result<_, _>>()?;
                for e in &deepest.edges[r] {
                    if !pairs.contains(&(e.from, e.to)) {
                        pairs.push((e.from, e.to));
                    }
                }
                tiles.push(region_tiles);
                windows.push(region_windows);
                rings.push(region_rings);
                local_programs.push(region_programs);
                compiled.push(region_compiled);
            }
        }

        // Second pass: translate every (depth, level, statement) domain into
        // its local window and clip it to the statement's updatable interior
        // once, instead of per fused block. The local statement domains are
        // identical between the compiled and interpreted engines (both are
        // derived from the per-statement halo growth over the window
        // extent), so the hoisted rects serve either mode.
        let stmts = program.updates.len();
        for depth in &mut depths {
            let mut domains = Vec::with_capacity(regions.len());
            for r in 0..regions.len() {
                let mut per_kernel = Vec::with_capacity(compiled[r].len());
                for (k, cp) in compiled[r].iter().enumerate() {
                    let origin = windows[r][k].lo();
                    let mut v = Vec::with_capacity(depth.h as usize * stmts);
                    for i in 1..=depth.h {
                        for s in 0..stmts {
                            let local = depth.plans[r][k].domain(i, s).translate(&-origin)?;
                            v.push(local.intersect(&cp.statement_domain(s))?);
                        }
                    }
                    per_kernel.push(v);
                }
                domains.push(per_kernel);
            }
            depth.domains = domains;
        }

        Ok(PipelinePlan {
            regions,
            tiles,
            windows,
            rings,
            local_programs,
            compiled,
            stmts,
            depths,
            pairs,
            updated,
            iterations,
            fused: hs.first().copied().unwrap_or(0),
        })
    }

    /// Index into [`Self::depths`] for a block of depth `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not one of the run's pass depths (an executor bug).
    pub fn depth_index(&self, h: u64) -> usize {
        self.depths
            .iter()
            .position(|d| d.h == h)
            .expect("block depth was planned")
    }
}

/// Verifies a received slab carries the expected global
/// `(iteration, statement)` tag. A mismatch means the pipe protocol skewed
/// — a real executor bug, so this is a hard runtime error, not a debug
/// assertion.
pub(crate) fn check_slab_step(
    kernel: usize,
    got: (u64, usize),
    expected: (u64, usize),
) -> Result<(), ExecError> {
    if got == expected {
        Ok(())
    } else {
        Err(ExecError::config(format!(
            "kernel {kernel}: pipe protocol skew: received slab tagged \
             (iteration {}, statement {}) but expected (iteration {}, statement {})",
            got.0, got.1, expected.0, expected.1
        )))
    }
}

/// Reusable per-run scratch for [`apply_statement_split`]: the boundary
/// cache (values + occupancy, keyed by the cell's linear index inside the
/// clipped domain), the committed-values buffer, and the compiled engine's
/// value stack. Hoisting these into one allocation per run (instead of
/// fresh vectors per fused block and statement) removes the allocator from
/// the inner loop.
#[derive(Debug, Default)]
pub(crate) struct SplitScratch {
    cached: Vec<f64>,
    have: Vec<bool>,
    values: Vec<f64>,
    stack: Vec<f64>,
    eval: stencilcl_lang::EvalScratch,
}

impl SplitScratch {
    pub fn new() -> Self {
        SplitScratch::default()
    }

    fn reset(&mut self, volume: usize) {
        self.cached.clear();
        self.cached.resize(volume, 0.0);
        self.have.clear();
        self.have.resize(volume, false);
        self.values.clear();
    }
}

/// Clipped-domain linear index of `p` (row-major over `clipped`), the key
/// of the boundary cache.
fn clipped_lin(clipped: &Rect, p: &stencilcl_grid::Point) -> usize {
    let lo = clipped.lo();
    let mut i = 0u64;
    for d in 0..clipped.dim() {
        i = i * clipped.len(d) + (p.coord(d) - lo.coord(d)) as u64;
    }
    i as usize
}

/// Applies statement `s` over the **pre-clipped** local domain `clipped`
/// (already intersected with the statement's updatable interior — see
/// [`DepthPlans::local_domain`]) with the paper's latency-hiding element
/// ordering (Section 3.1): the cells feeding outgoing slabs are evaluated
/// first — against the pristine pre-statement state — and each slab is
/// handed to `emit` before any interior work, so downstream kernels can
/// start consuming while this kernel computes its interior. All writes
/// commit only after every evaluation, preserving the snapshot semantics
/// (and therefore bit-exactness with the reference execution in either
/// engine mode).
///
/// With a compiled engine both the boundary cache and the interior are
/// evaluated through the statement's bytecode tape; the interior is a
/// row-major sweep over contiguous rows through the lane-parallel walk
/// ([`CompiledProgram::eval_row_into`]), no `Point` construction, and
/// bounds proven once per row. Boundary cells already in the cache are
/// recomputed as part of their row — the cache is memoization over the
/// unmutated pre-statement state, so the recompute is bit-identical and
/// the row stays contiguous for the vector lanes.
///
/// `outs[e]` is the local-coordinate source rect of outgoing slab `e`;
/// `emit(e, values)` receives the post-statement values of the target array
/// over that rect.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_statement_split<S: TraceSink>(
    engine: &Engine<'_>,
    local: &mut GridState,
    s: usize,
    clipped: &Rect,
    outs: &[Rect],
    scratch: &mut SplitScratch,
    sink: &S,
    mut emit: impl FnMut(usize, Vec<f64>) -> Result<(), ExecError>,
) -> Result<(), ExecError> {
    if S::ACTIVE {
        sink.add(Counter::CellsComputed, clipped.volume());
    }
    scratch.reset(clipped.volume() as usize);
    match engine {
        Engine::Interpreted(interp) => {
            let stmt = &interp.program().updates[s];
            for (e, overlap) in outs.iter().enumerate() {
                let mut values = local.grid(&stmt.target)?.read_window(overlap)?;
                if !clipped.is_empty() {
                    for (slot, p) in overlap.iter().enumerate() {
                        if clipped.contains(&p) {
                            let i = clipped_lin(clipped, &p);
                            let v = if scratch.have[i] {
                                scratch.cached[i]
                            } else {
                                let v = interp.eval(&stmt.rhs, local, &p)?;
                                scratch.cached[i] = v;
                                scratch.have[i] = true;
                                v
                            };
                            values[slot] = v;
                        }
                    }
                }
                emit(e, values)?;
            }
            if clipped.is_empty() {
                return Ok(());
            }
            for p in clipped.iter() {
                let i = clipped_lin(clipped, &p);
                let v = if scratch.have[i] {
                    scratch.cached[i]
                } else {
                    interp.eval(&stmt.rhs, local, &p)?
                };
                scratch.values.push(v);
            }
            let target = local.grid_mut(&stmt.target)?;
            target.write_window(clipped, &scratch.values)?;
        }
        Engine::Compiled(cp) => {
            let target = cp.kernel(s).target();
            {
                let views = cp.views(local)?;
                for (e, overlap) in outs.iter().enumerate() {
                    let mut values = local.grid(target)?.read_window(overlap)?;
                    if !clipped.is_empty() {
                        for (slot, p) in overlap.iter().enumerate() {
                            if clipped.contains(&p) {
                                let i = clipped_lin(clipped, &p);
                                let v = if scratch.have[i] {
                                    scratch.cached[i]
                                } else {
                                    let idx = cp.extent().linearize(&p)?;
                                    let v = cp.eval_idx(s, &views, idx, &mut scratch.stack);
                                    scratch.cached[i] = v;
                                    scratch.have[i] = true;
                                    v
                                };
                                values[slot] = v;
                            }
                        }
                    }
                    emit(e, values)?;
                }
                if clipped.is_empty() {
                    return Ok(());
                }
                // Interior sweep: whole contiguous rows through the
                // lane-parallel tape walk. The boundary cache above is pure
                // memoization — `local` is unmutated until the write below —
                // so re-evaluating cached cells as part of their row is
                // bit-identical and keeps the sweep branch-free.
                let row_len = clipped.len(clipped.dim() - 1) as usize;
                for start in clipped.row_starts() {
                    let base = cp.extent().linearize(&start)?;
                    cp.eval_row_into(
                        s,
                        &views,
                        base,
                        row_len,
                        &mut scratch.eval,
                        &mut scratch.values,
                    )?;
                }
            }
            let target_grid = local.grid_mut(target)?;
            target_grid.write_window(clipped, &scratch.values)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Design, DesignKind, Extent};
    use stencilcl_lang::programs;

    #[test]
    fn pass_depths_cover_the_run() {
        assert_eq!(pass_depths(4, 10), vec![4, 2]);
        assert_eq!(pass_depths(4, 8), vec![4]);
        assert_eq!(pass_depths(4, 3), vec![3]);
        assert_eq!(pass_depths(1, 5), vec![1]);
        assert!(pass_depths(4, 0).is_empty());
    }

    #[test]
    fn sealed_slabs_detect_payload_corruption() {
        use crate::integrity::slab_checksum;
        let clean = Slab::tagged((2, 1), vec![1.5, -3.25], false).seal(9);
        let sum = clean.checksum.expect("sealed");
        assert_eq!(sum, slab_checksum(9, (2, 1), &clean.values));
        let corrupt = Slab::tagged((2, 1), vec![1.5, -3.25], false)
            .seal(9)
            .corrupt_payload();
        assert_eq!(corrupt.checksum, Some(sum), "seal happens before the flip");
        assert_ne!(
            slab_checksum(9, (2, 1), &corrupt.values),
            sum,
            "recomputation over the flipped payload must mismatch"
        );
        // An unsealed slab carries no checksum at all.
        assert_eq!(Slab::tagged((2, 1), vec![0.0], false).checksum, None);
    }

    #[test]
    fn slab_step_mismatch_is_a_hard_error() {
        assert!(check_slab_step(0, (3, 1), (3, 1)).is_ok());
        let err = check_slab_step(2, (3, 0), (3, 1)).unwrap_err();
        assert!(matches!(err, ExecError::BadConfiguration { .. }));
        assert!(err.to_string().contains("protocol skew"));
        assert!(err.to_string().contains("kernel 2"));
        assert!(check_slab_step(1, (4, 0), (3, 0)).is_err());
    }

    fn plan_for(fused: u64, iterations: u64) -> PipelinePlan {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(iterations);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::PipeShared, fused, vec![2, 2], vec![8, 8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        PipelinePlan::new(&p, &partition, None).unwrap()
    }

    #[test]
    fn shallower_pass_geometry_nests_in_the_deepest_window() {
        let plan = plan_for(4, 10); // depths 4 and 2
        assert_eq!(plan.depths.len(), 2);
        for (di, depth) in plan.depths.iter().enumerate() {
            for (r, region_plans) in depth.plans.iter().enumerate() {
                for (k, dp) in region_plans.iter().enumerate() {
                    assert!(
                        plan.windows[r][k].contains_rect(&dp.buffer()),
                        "depth {di} buffer escapes the persistent window"
                    );
                }
                for e in &depth.edges[r] {
                    assert!(plan.windows[r][e.from].contains_rect(&e.overlap));
                    assert!(plan.windows[r][e.to].contains_rect(&e.overlap));
                }
            }
        }
    }

    #[test]
    fn edge_pair_set_is_depth_independent() {
        let plan = plan_for(3, 7); // depths 3 and 1
        for depth in &plan.depths {
            for region_edges in &depth.edges {
                for e in region_edges {
                    assert!(plan.pairs.contains(&(e.from, e.to)));
                }
            }
        }
    }

    #[test]
    fn rings_tile_the_window_exactly() {
        let plan = plan_for(3, 6);
        for r in 0..plan.regions.len() {
            for k in 0..plan.tiles[r].len() {
                let ring_volume: u64 = plan.rings[r][k].iter().map(Rect::volume).sum();
                assert_eq!(
                    ring_volume + plan.tiles[r][k].volume(),
                    plan.windows[r][k].volume()
                );
            }
        }
    }

    #[test]
    fn rejects_baseline_designs() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(32))
            .with_iterations(2);
        let f = StencilFeatures::extract(&p).unwrap();
        let d = Design::equal(DesignKind::Baseline, 2, vec![2], vec![8]).unwrap();
        let partition = Partition::new(p.extent(), &d, &f.growth).unwrap();
        assert!(PipelinePlan::new(&p, &partition, None).is_err());
    }
}
