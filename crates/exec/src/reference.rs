use stencilcl_lang::{GridState, Interpreter, Program};

use crate::engine::compile_with_env_unroll;
use crate::options::{EngineKind, ExecOptions};
use crate::ExecError;

/// Runs the naive reference execution: `program.iterations` full-grid stencil
/// iterations with a global synchronization after each one — the semantics of
/// Figure 3's pseudo code, and the ground truth every accelerator design is
/// checked against.
///
/// By default the program is lowered to flat bytecode kernels once and
/// executed with branch-free row sweeps; `STENCILCL_INTERPRET=1` selects the
/// tree-walking AST interpreter instead. Both are bit-exact.
///
/// # Errors
///
/// Returns [`ExecError::Lang`] if the state lacks one of the program's grids.
///
/// # Example
///
/// ```
/// use stencilcl_exec::run_reference;
/// use stencilcl_grid::Extent;
/// use stencilcl_lang::{programs, GridState};
///
/// let p = programs::jacobi_1d().with_extent(Extent::new1(32)).with_iterations(4);
/// let mut s = GridState::uniform(&p, 1.0);
/// run_reference(&p, &mut s)?;
/// # Ok::<(), stencilcl_exec::ExecError>(())
/// ```
pub fn run_reference(program: &Program, state: &mut GridState) -> Result<(), ExecError> {
    run_reference_opts(program, state, &ExecOptions::from_env())
}

/// [`run_reference`] with an explicit engine choice (the reference loop has
/// no pipes or workers, so only [`ExecOptions::engine`] matters here).
///
/// # Errors
///
/// Same conditions as [`run_reference`].
pub fn run_reference_opts(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    match opts.engine {
        EngineKind::Interpreted => Interpreter::new(program).run(state, program.iterations)?,
        EngineKind::Compiled => compile_with_env_unroll(program)?.run(state, program.iterations)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Extent, Point};
    use stencilcl_lang::programs;

    #[test]
    fn reference_runs_all_iterations() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(2);
        let mut s = GridState::new(&p, |_, pt| if pt.coord(0) == 8 { 1.0 } else { 0.0 });
        run_reference(&p, &mut s).unwrap();
        // After two radius-1 iterations the spike has spread two cells.
        let a = s.grid("A").unwrap();
        assert!(*a.get(&Point::new1(6)).unwrap() > 0.0);
        assert_eq!(*a.get(&Point::new1(5)).unwrap(), 0.0);
    }
}
