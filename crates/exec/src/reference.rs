use stencilcl_lang::{GridState, Interpreter, Program};
use stencilcl_telemetry::{Disabled, TraceSink};

use crate::engine::compile_with_env_unroll;
use crate::integrity::{scan_state, RunLimits};
use crate::options::{EngineKind, ExecOptions};
use crate::ExecError;

/// Runs the naive reference execution: `program.iterations` full-grid stencil
/// iterations with a global synchronization after each one — the semantics of
/// Figure 3's pseudo code, and the ground truth every accelerator design is
/// checked against.
///
/// By default the program is lowered to flat bytecode kernels once and
/// executed with branch-free row sweeps; `STENCILCL_INTERPRET=1` selects the
/// tree-walking AST interpreter instead. Both are bit-exact.
///
/// # Errors
///
/// Returns [`ExecError::Lang`] if the state lacks one of the program's grids.
///
/// # Example
///
/// ```
/// use stencilcl_exec::run_reference;
/// use stencilcl_grid::Extent;
/// use stencilcl_lang::{programs, GridState};
///
/// let p = programs::jacobi_1d().with_extent(Extent::new1(32)).with_iterations(4);
/// let mut s = GridState::uniform(&p, 1.0);
/// run_reference(&p, &mut s)?;
/// # Ok::<(), stencilcl_exec::ExecError>(())
/// ```
pub fn run_reference(program: &Program, state: &mut GridState) -> Result<(), ExecError> {
    run_reference_opts(program, state, &ExecOptions::from_env())
}

/// [`run_reference`] with explicit [`ExecOptions`]. The reference loop has
/// no pipes or workers, so [`ExecOptions::integrity`] is moot here; the
/// engine choice, the run deadline, and the health watchdog all apply. With
/// either guard armed the loop runs one iteration at a time — checking the
/// deadline before each iteration and scanning the grids after each — and a
/// health abort rolls `state` back to the last healthy iteration.
///
/// # Errors
///
/// Same conditions as [`run_reference`], plus
/// [`ExecError::DeadlineExceeded`] and [`ExecError::NumericDivergence`]
/// when the corresponding guard trips.
pub fn run_reference_opts(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    if opts.policy.tile.is_some() {
        // Temporal blocking requested ([`crate::ExecPolicy::tile`] /
        // `STENCILCL_TILE`): hand the run to the trapezoid-blocked driver.
        // (It may hand it right back through [`run_plain_reference`] when
        // the cost model predicts blocking would lose.)
        return crate::blocking::run_blocked_reference(program, state, opts);
    }
    run_plain_reference(program, state, opts)
}

/// The un-blocked reference loop — [`run_reference_opts`] minus the tile
/// dispatch, so the blocked driver can fall back here without recursing.
pub(crate) fn run_plain_reference(
    program: &Program,
    state: &mut GridState,
    opts: &ExecOptions,
) -> Result<(), ExecError> {
    let limits = opts.limits();
    if !limits.any_active() {
        // Unguarded fast path: hand the whole run to the engine at once.
        match opts.engine {
            EngineKind::Interpreted => Interpreter::new(program).run(state, program.iterations)?,
            EngineKind::Compiled => {
                compile_with_env_unroll(program, opts.lanes)?.run(state, program.iterations)?
            }
        }
        return Ok(());
    }
    match &opts.trace {
        Some(rec) => guarded_reference(
            program,
            state,
            opts.engine,
            opts.lanes,
            limits,
            &rec.clone(),
        ),
        None => guarded_reference(program, state, opts.engine, opts.lanes, limits, &Disabled),
    }
}

/// The guarded per-iteration loop behind [`run_reference_opts`]: deadline
/// check before, health scan after, every iteration. The reference grid is
/// updated in place (no double buffer), so when the watchdog is armed the
/// previous iteration is kept as an explicit clone — this is the oracle
/// path, correctness over speed.
fn guarded_reference<S: TraceSink>(
    program: &Program,
    state: &mut GridState,
    engine: EngineKind,
    lanes: Option<usize>,
    limits: RunLimits,
    sink: &S,
) -> Result<(), ExecError> {
    let updated: Vec<String> = program
        .updated_grids()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let interp = Interpreter::new(program);
    let compiled = match engine {
        EngineKind::Compiled => Some(compile_with_env_unroll(program, lanes)?),
        EngineKind::Interpreted => None,
    };
    let mut checkpoint = limits.health.enabled().then(|| state.clone());
    for it in 0..program.iterations {
        limits.check_deadline(it)?;
        match &compiled {
            Some(kernels) => kernels.run(state, 1)?,
            None => interp.run(state, 1)?,
        }
        if limits.health.enabled() {
            if let Err(e) = scan_state(&limits.health, state, &updated, &[], it, sink) {
                if let Some(healthy) = checkpoint {
                    *state = healthy;
                }
                return Err(e);
            }
            checkpoint = Some(state.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilcl_grid::{Extent, Point};
    use stencilcl_lang::programs;

    #[test]
    fn reference_runs_all_iterations() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(2);
        let mut s = GridState::new(&p, |_, pt| if pt.coord(0) == 8 { 1.0 } else { 0.0 });
        run_reference(&p, &mut s).unwrap();
        // After two radius-1 iterations the spike has spread two cells.
        let a = s.grid("A").unwrap();
        assert!(*a.get(&Point::new1(6)).unwrap() > 0.0);
        assert_eq!(*a.get(&Point::new1(5)).unwrap(), 0.0);
    }

    #[test]
    fn guarded_reference_is_bit_exact_with_the_fast_path() {
        let p = programs::jacobi_2d()
            .with_extent(Extent::new2(16, 16))
            .with_iterations(5);
        let init = |_: &str, pt: &Point| (pt.coord(0) * 17 + pt.coord(1)) as f64 * 0.01;
        let mut fast = GridState::new(&p, init);
        run_reference(&p, &mut fast).unwrap();
        let mut guarded = GridState::new(&p, init);
        let opts = ExecOptions::new()
            .policy(crate::ExecPolicy {
                deadline: Some(std::time::Duration::from_secs(3600)),
                ..crate::ExecPolicy::default()
            })
            .health(crate::HealthPolicy::bounded(1e6));
        run_reference_opts(&p, &mut guarded, &opts).unwrap();
        assert_eq!(fast.max_abs_diff(&guarded).unwrap(), 0.0);
    }

    #[test]
    fn seeded_nan_aborts_with_the_iteration_and_a_healthy_state() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(4);
        // A NaN seed diverges immediately: iteration 1 spreads it.
        let mut s = GridState::new(&p, |_, pt| if pt.coord(0) == 8 { f64::NAN } else { 0.0 });
        let opts = ExecOptions::new().health(crate::HealthPolicy::non_finite());
        let err = run_reference_opts(&p, &mut s, &opts).unwrap_err();
        assert!(matches!(
            err,
            ExecError::NumericDivergence { iteration: 0, .. }
        ));
        // The rolled-back state is the (still NaN-seeded) initial grid —
        // i.e. zero completed iterations, matching the error.
        assert!(s.grid("A").unwrap().as_slice().iter().any(|v| v.is_nan()));
    }

    #[test]
    fn expired_deadline_stops_before_the_first_iteration() {
        let p = programs::jacobi_1d()
            .with_extent(Extent::new1(16))
            .with_iterations(4);
        let mut s = GridState::uniform(&p, 1.0);
        let opts = ExecOptions::new().policy(crate::ExecPolicy {
            deadline: Some(std::time::Duration::ZERO),
            ..crate::ExecPolicy::default()
        });
        let err = run_reference_opts(&p, &mut s, &opts).unwrap_err();
        assert_eq!(err, ExecError::DeadlineExceeded { completed: 0 });
    }
}
