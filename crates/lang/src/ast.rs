use std::fmt;

use serde::{Deserialize, Serialize};
use stencilcl_grid::{Extent, Point};

/// Element type of a grid, which fixes the transferred bit size `Δs` of the
/// performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemType {
    /// IEEE-754 single precision (4 bytes).
    F32,
    /// IEEE-754 double precision (8 bytes).
    F64,
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ElemType::F32 => 4,
            ElemType::F64 => 8,
        }
    }

    /// The DSL / OpenCL spelling of the type.
    pub fn name(self) -> &'static str {
        match self {
            ElemType::F32 => "float",
            ElemType::F64 => "double",
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declaration of a grid (a global-memory array on the accelerator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridDecl {
    /// The grid's name.
    pub name: String,
    /// Its size per dimension.
    pub extent: Extent,
    /// Element type.
    pub ty: ElemType,
    /// Read-only grids (e.g. HotSpot's power map) are never written by update
    /// statements and need no write-back or pipe traffic.
    pub read_only: bool,
}

/// A named scalar constant usable in update expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// The parameter's name.
    pub name: String,
    /// Its value.
    pub value: f64,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
}

/// Built-in intrinsic functions (OpenCL's `fmin`/`fmax`/`fabs`/`sqrt`).
///
/// These cover the stencils of the paper's application references beyond the
/// benchmark suite — e.g. the Chambolle total-variation algorithm [refs 2,
/// 20] needs `abs`, and morphological filters need `min`/`max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Func {
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
}

impl Func {
    /// The DSL spelling.
    pub fn name(self) -> &'static str {
        match self {
            Func::Min => "min",
            Func::Max => "max",
            Func::Abs => "abs",
            Func::Sqrt => "sqrt",
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max => 2,
            Func::Abs | Func::Sqrt => 1,
        }
    }

    /// Looks an intrinsic up by its DSL spelling.
    pub fn by_name(name: &str) -> Option<Func> {
        match name {
            "min" => Some(Func::Min),
            "max" => Some(Func::Max),
            "abs" => Some(Func::Abs),
            "sqrt" => Some(Func::Sqrt),
            _ => None,
        }
    }
}

/// An arithmetic expression over grid accesses, parameters and literals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A floating-point literal.
    Number(f64),
    /// A named parameter reference.
    Param(String),
    /// A grid access at a constant offset from the iteration point, e.g.
    /// `A[i-1][j]` has offset `(-1, 0)`.
    Access {
        /// Name of the accessed grid.
        grid: String,
        /// Constant offset from the iteration point.
        offset: Point,
    },
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// An intrinsic function call, e.g. `min(a, b)`.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Visits every grid access in the expression.
    pub fn for_each_access(&self, f: &mut impl FnMut(&str, &Point)) {
        match self {
            Expr::Number(_) | Expr::Param(_) => {}
            Expr::Access { grid, offset } => f(grid, offset),
            Expr::Unary(_, e) => e.for_each_access(f),
            Expr::Binary(_, a, b) => {
                a.for_each_access(f);
                b.for_each_access(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.for_each_access(f);
                }
            }
        }
    }

    /// All grid accesses as `(grid, offset)` pairs, in evaluation order.
    pub fn accesses(&self) -> Vec<(String, Point)> {
        let mut out = Vec::new();
        self.for_each_access(&mut |g, o| out.push((g.to_string(), *o)));
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(v) => write!(f, "{v}"),
            Expr::Param(p) => f.write_str(p),
            Expr::Access { grid, offset } => {
                f.write_str(grid)?;
                for d in 0..offset.dim() {
                    let c = offset.coord(d);
                    let var = ["i", "j", "k"][d];
                    match c.cmp(&0) {
                        std::cmp::Ordering::Equal => write!(f, "[{var}]")?,
                        std::cmp::Ordering::Greater => write!(f, "[{var}+{c}]")?,
                        std::cmp::Ordering::Less => write!(f, "[{var}{c}]")?,
                    }
                }
                Ok(())
            }
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One update statement: `target[i][j] = expr;`.
///
/// Statements execute in program order within each stencil iteration, each
/// with snapshot semantics: the right-hand side reads the state left by the
/// previous statement, and all writes of one statement commit atomically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStmt {
    /// Name of the written grid.
    pub target: String,
    /// Names of the iteration variables bound by the left-hand side, one per
    /// dimension (e.g. `["i", "j"]`).
    pub index_vars: Vec<String>,
    /// The update expression.
    pub rhs: Expr,
}

/// A checked stencil program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The program's name (from `stencil <name> { ... }`).
    pub name: String,
    /// All grid declarations.
    pub grids: Vec<GridDecl>,
    /// All parameter declarations.
    pub params: Vec<ParamDecl>,
    /// Total number of stencil iterations `H`.
    pub iterations: u64,
    /// Update statements, in execution order.
    pub updates: Vec<UpdateStmt>,
}

impl Program {
    /// Looks up a grid declaration by name.
    pub fn grid(&self, name: &str) -> Option<&GridDecl> {
        self.grids.iter().find(|g| g.name == name)
    }

    /// Looks up a parameter value by name.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|p| p.name == name).map(|p| p.value)
    }

    /// The extent shared by all grids (validated by [`check`](crate::check)).
    pub fn extent(&self) -> Extent {
        self.grids
            .first()
            .expect("checked programs have at least one grid")
            .extent
    }

    /// Number of spatial dimensions.
    pub fn dim(&self) -> usize {
        self.extent().dim()
    }

    /// The element type shared by all grids.
    pub fn elem_type(&self) -> ElemType {
        self.grids
            .first()
            .expect("checked programs have at least one grid")
            .ty
    }

    /// Names of grids written by update statements.
    pub fn updated_grids(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for u in &self.updates {
            if !names.contains(&u.target.as_str()) {
                names.push(&u.target);
            }
        }
        names
    }

    /// Returns a copy with a different shared grid extent (all grids resized)
    /// — used to shrink paper-scale inputs for functional testing.
    pub fn with_extent(&self, extent: Extent) -> Program {
        let mut p = self.clone();
        for g in &mut p.grids {
            g.extent = extent;
        }
        p
    }

    /// Returns a copy with a different iteration count `H`.
    pub fn with_iterations(&self, iterations: u64) -> Program {
        let mut p = self.clone();
        p.iterations = iterations;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_type_sizes() {
        assert_eq!(ElemType::F32.bytes(), 4);
        assert_eq!(ElemType::F64.bytes(), 8);
        assert_eq!(ElemType::F32.to_string(), "float");
    }

    #[test]
    fn expr_accesses_collects_in_order() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Access {
                grid: "A".into(),
                offset: Point::new1(-1),
            }),
            Box::new(Expr::Access {
                grid: "B".into(),
                offset: Point::new1(1),
            }),
        );
        let acc = e.accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].0, "A");
        assert_eq!(acc[1].1, Point::new1(1));
    }

    #[test]
    fn expr_display_roundtrips_shape() {
        let e = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::Number(0.5)),
            Box::new(Expr::Access {
                grid: "A".into(),
                offset: Point::new2(-1, 2),
            }),
        );
        assert_eq!(e.to_string(), "(0.5 * A[i-1][j+2])");
    }
}
