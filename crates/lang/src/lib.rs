//! Stencil kernel DSL: lexer, parser, AST, semantic checks, feature
//! extraction, and a reference interpreter.
//!
//! The DAC'17 framework takes "an original stencil algorithm written in
//! OpenCL" as input, runs a *feature extractor* over it to determine the
//! application-specific configuration (stencil shape, dimension, operation
//! type), and feeds those features to the performance optimizer and the code
//! generator. This crate is that front end: since no OpenCL toolchain exists
//! in this environment, stencil algorithms are written in a small textual DSL
//! that captures exactly the information the paper's extractor consumes.
//!
//! A program looks like:
//!
//! ```text
//! stencil jacobi2d {
//!     grid A[64][64] : f32;
//!     iterations 16;
//!     A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
//! }
//! ```
//!
//! * [`parse`] turns source text into a checked [`Program`];
//! * [`StencilFeatures::extract`] derives the shape, per-iteration halo
//!   [`Growth`](stencilcl_grid::Growth), and operation counts;
//! * [`Interpreter`] executes programs over [`GridState`]s — the functional
//!   ground truth every accelerator design is validated against;
//! * [`programs`] provides the seven benchmarks of the paper's Table 2.
//!
//! # Example
//!
//! ```
//! use stencilcl_lang::{parse, StencilFeatures};
//!
//! let src = "stencil blur { grid A[32] : f32; iterations 4;
//!             A[i] = 0.5 * (A[i-1] + A[i+1]); }";
//! let program = parse(src)?;
//! let features = StencilFeatures::extract(&program)?;
//! assert_eq!(features.dim, 1);
//! assert_eq!(features.growth.total(0), 2);
//! # Ok::<(), stencilcl_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod ast;
mod check;
mod compile;
mod error;
mod features;
mod interp;
mod lexer;
mod parser;
pub mod programs;
mod token;

pub use ast::{BinOp, ElemType, Expr, Func, GridDecl, ParamDecl, Program, UnaryOp, UpdateStmt};
pub use check::check;
pub use compile::{CompiledKernel, CompiledProgram, EvalScratch, FusedScratch, Op, LANE_WIDTH};
pub use error::LangError;
pub use features::{OpCounts, StatementFeatures, StencilFeatures};
pub use interp::{GridState, Interpreter};
pub use lexer::tokenize;
pub use parser::parse;
pub use token::{Span, Token, TokenKind};
