use serde::{Deserialize, Serialize};
use stencilcl_grid::{Extent, Growth, Point};

use crate::ast::{Expr, Program};
use crate::LangError;

/// Arithmetic operation counts of an update expression, used by the HLS
/// estimator to size the processing-element datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpCounts {
    /// Additions.
    pub add: u64,
    /// Subtractions.
    pub sub: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Negations.
    pub neg: u64,
    /// `min`/`max` comparisons.
    pub minmax: u64,
    /// Other intrinsics (`abs`, `sqrt`).
    pub special: u64,
}

impl OpCounts {
    /// Total floating-point operations per element update.
    pub fn flops(&self) -> u64 {
        self.add + self.sub + self.mul + self.div + self.neg + self.minmax + self.special
    }

    /// Component-wise sum.
    pub fn combined(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add + other.add,
            sub: self.sub + other.sub,
            mul: self.mul + other.mul,
            div: self.div + other.div,
            neg: self.neg + other.neg,
            minmax: self.minmax + other.minmax,
            special: self.special + other.special,
        }
    }

    fn of_expr(expr: &Expr) -> OpCounts {
        let mut c = OpCounts::default();
        fn walk(e: &Expr, c: &mut OpCounts) {
            match e {
                Expr::Number(_) | Expr::Param(_) | Expr::Access { .. } => {}
                Expr::Unary(crate::ast::UnaryOp::Neg, inner) => {
                    c.neg += 1;
                    walk(inner, c);
                }
                Expr::Binary(op, a, b) => {
                    match op {
                        crate::ast::BinOp::Add => c.add += 1,
                        crate::ast::BinOp::Sub => c.sub += 1,
                        crate::ast::BinOp::Mul => c.mul += 1,
                        crate::ast::BinOp::Div => c.div += 1,
                    }
                    walk(a, c);
                    walk(b, c);
                }
                Expr::Call(func, args) => {
                    match func {
                        crate::ast::Func::Min | crate::ast::Func::Max => c.minmax += 1,
                        crate::ast::Func::Abs | crate::ast::Func::Sqrt => c.special += 1,
                    }
                    for a in args {
                        walk(a, c);
                    }
                }
            }
        }
        walk(expr, &mut c);
        c
    }
}

/// Features of one update statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementFeatures {
    /// The written grid.
    pub target: String,
    /// Unique `(grid, offset)` accesses of the right-hand side.
    pub accesses: Vec<(String, Point)>,
    /// The halo this statement alone requires.
    pub growth: Growth,
    /// Arithmetic operation counts.
    pub ops: OpCounts,
    /// Total (non-unique) grid reads per element.
    pub reads: usize,
}

/// The application-specific stencil configuration the paper's *feature
/// extractor* derives from source: dimension, shape, per-iteration halo
/// growth, and operation mix.
///
/// # Example
///
/// ```
/// use stencilcl_lang::{programs, StencilFeatures};
///
/// let f = StencilFeatures::extract(&programs::jacobi_2d())?;
/// assert_eq!(f.dim, 2);
/// assert_eq!(f.growth.total(0), 2); // radius-1 star, both sides
/// assert_eq!(f.statements.len(), 1);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilFeatures {
    /// Program name.
    pub name: String,
    /// Number of spatial dimensions `D`.
    pub dim: usize,
    /// Shared grid extent (`W_d` per dimension).
    pub extent: Extent,
    /// Total stencil iterations `H`.
    pub iterations: u64,
    /// Bytes per element (`Δs`).
    pub elem_bytes: u64,
    /// Per-fused-iteration halo growth (`Δw_d` totals per dimension) —
    /// statement growths chained in program order.
    pub growth: Growth,
    /// Per-statement features, in execution order.
    pub statements: Vec<StatementFeatures>,
    /// Combined operation counts of one full element update (all statements).
    pub ops: OpCounts,
    /// Number of grids written by updates.
    pub updated_arrays: usize,
    /// Number of `read_only` grids.
    pub read_only_arrays: usize,
}

impl StencilFeatures {
    /// Extracts features from a checked program.
    ///
    /// Per-iteration growth is the *chained* sum of per-statement growths:
    /// when statement `s+1` reads what statement `s` wrote (FDTD's
    /// `e`-then-`h` pattern), halos accumulate across the chain. For
    /// independent statements this is conservative, which only ever enlarges
    /// cones (correctness is preserved; efficiency is the optimizer's
    /// concern).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Semantic`] if the program fails
    /// [`check`](crate::check).
    pub fn extract(program: &Program) -> Result<StencilFeatures, LangError> {
        crate::check(program)?;
        let dim = program.dim();
        let mut statements = Vec::with_capacity(program.updates.len());
        let mut growth = Growth::zero(dim);
        let mut ops = OpCounts::default();
        for stmt in &program.updates {
            let all = stmt.rhs.accesses();
            let mut unique: Vec<(String, Point)> = Vec::new();
            for a in &all {
                if !unique.contains(a) {
                    unique.push(a.clone());
                }
            }
            let stmt_growth = Growth::from_offsets(dim, unique.iter().map(|(_, o)| o))?;
            growth = growth.checked_add(&stmt_growth)?;
            let stmt_ops = OpCounts::of_expr(&stmt.rhs);
            ops = ops.combined(&stmt_ops);
            statements.push(StatementFeatures {
                target: stmt.target.clone(),
                accesses: unique,
                growth: stmt_growth,
                ops: stmt_ops,
                reads: all.len(),
            });
        }
        Ok(StencilFeatures {
            name: program.name.clone(),
            dim,
            extent: program.extent(),
            iterations: program.iterations,
            elem_bytes: program.elem_type().bytes(),
            growth,
            statements,
            ops,
            updated_arrays: program.updated_grids().len(),
            read_only_arrays: program.grids.iter().filter(|g| g.read_only).count(),
        })
    }

    /// Maximum single-side halo reach per fused iteration — the slab depth
    /// adjacent tiles exchange through pipes each iteration.
    pub fn pipe_depth(&self) -> u64 {
        self.growth.max_reach()
    }

    /// Elements transferred to/from global memory per grid point per pass:
    /// one read and one write per updated array, one read per read-only
    /// array.
    pub fn global_traffic_per_point(&self) -> u64 {
        (2 * self.updated_arrays + self.read_only_arrays) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn jacobi_like_features() {
        let p = parse(
            "stencil j { grid A[16][16] : f32; iterations 8;
             A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]); }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        assert_eq!(f.dim, 2);
        assert_eq!(f.growth, Growth::symmetric(2, 1));
        assert_eq!(f.ops.add, 4);
        assert_eq!(f.ops.mul, 1);
        assert_eq!(f.statements[0].reads, 5);
        assert_eq!(f.updated_arrays, 1);
        assert_eq!(f.elem_bytes, 4);
        assert_eq!(f.pipe_depth(), 1);
        assert_eq!(f.global_traffic_per_point(), 2);
    }

    #[test]
    fn chained_statements_accumulate_growth() {
        let p = parse(
            "stencil fdtd { grid E[16][16] : f32; grid H[16][16] : f32; iterations 2;
             E[i][j] = E[i][j] - 0.5 * (H[i][j] - H[i-1][j]);
             H[i][j] = H[i][j] - 0.7 * (E[i+1][j] - E[i][j]); }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        // E reads one low-side neighbor, H reads one high-side neighbor:
        // chained growth is 1 on each side of dimension 0.
        assert_eq!(f.growth.lo(0), 1);
        assert_eq!(f.growth.hi(0), 1);
        assert_eq!(f.growth.total(1), 0);
        assert_eq!(f.statements.len(), 2);
        assert_eq!(f.updated_arrays, 2);
    }

    #[test]
    fn duplicate_accesses_deduplicated_for_shape() {
        let p = parse(
            "stencil d { grid A[8] : f32; iterations 1;
             A[i] = A[i] + A[i] * A[i-1]; }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        assert_eq!(f.statements[0].accesses.len(), 2);
        assert_eq!(f.statements[0].reads, 3);
    }

    #[test]
    fn read_only_arrays_counted() {
        let p = parse(
            "stencil hs { grid T[8] : f32; grid P[8] : f32 read_only; iterations 1;
             T[i] = T[i] + P[i]; }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        assert_eq!(f.read_only_arrays, 1);
        assert_eq!(f.updated_arrays, 1);
        assert_eq!(f.global_traffic_per_point(), 3);
    }

    #[test]
    fn op_counts_include_div_and_neg() {
        let p = parse(
            "stencil o { grid A[8] : f32; iterations 1;
             A[i] = -A[i] / 2.0 - 1.0; }",
        )
        .unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        assert_eq!(f.ops.neg, 1);
        assert_eq!(f.ops.div, 1);
        assert_eq!(f.ops.sub, 1);
        assert_eq!(f.ops.flops(), 3);
    }
}
