use std::fmt;

use crate::token::Span;

/// Errors produced while lexing, parsing, checking, extracting features from,
/// or interpreting a stencil program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// An unexpected character was encountered while lexing.
    Lex {
        /// Where in the source the character occurred.
        span: Span,
        /// The offending character.
        found: char,
    },
    /// The parser expected one construct but found another.
    Parse {
        /// Where in the source the mismatch occurred.
        span: Span,
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A semantic rule was violated (undeclared grids, read-only writes,
    /// non-constant offsets, mismatched dimensionality, ...).
    Semantic {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An underlying geometric operation failed.
    Grid(stencilcl_grid::GridError),
    /// A runtime evaluation error (missing grid in a state, division by zero
    /// guard, ...).
    Eval {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { span, found } => {
                write!(f, "lex error at {span}: unexpected character {found:?}")
            }
            LangError::Parse {
                span,
                expected,
                found,
            } => {
                write!(
                    f,
                    "parse error at {span}: expected {expected}, found {found}"
                )
            }
            LangError::Semantic { detail } => write!(f, "semantic error: {detail}"),
            LangError::Grid(e) => write!(f, "geometry error: {e}"),
            LangError::Eval { detail } => write!(f, "evaluation error: {detail}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stencilcl_grid::GridError> for LangError {
    fn from(e: stencilcl_grid::GridError) -> Self {
        LangError::Grid(e)
    }
}

impl LangError {
    /// Convenience constructor for semantic errors.
    pub fn semantic(detail: impl Into<String>) -> Self {
        LangError::Semantic {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for evaluation errors.
    pub fn eval(detail: impl Into<String>) -> Self {
        LangError::Eval {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location() {
        let e = LangError::Lex {
            span: Span { line: 3, col: 7 },
            found: '$',
        };
        let s = e.to_string();
        assert!(s.contains("3:7"), "{s}");
        assert!(s.contains('$'), "{s}");
    }

    #[test]
    fn grid_error_is_source() {
        use std::error::Error;
        let e = LangError::from(stencilcl_grid::GridError::EmptyExtent);
        assert!(e.source().is_some());
    }
}
