use std::fmt;

/// A `line:col` source position (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `stencil`, `grid`, `param`, `iterations`, `read_only`, `f32`, `f64`,
    /// or a user identifier.
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A floating-point literal.
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "number `{v}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Equals => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexed token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        assert_eq!(Span { line: 2, col: 5 }.to_string(), "2:5");
    }

    #[test]
    fn kind_display_examples() {
        assert_eq!(
            TokenKind::Ident("abc".into()).to_string(),
            "identifier `abc`"
        );
        assert_eq!(TokenKind::LBrace.to_string(), "`{`");
    }
}
