//! Bytecode compilation of stencil update statements.
//!
//! [`Interpreter::eval`](crate::Interpreter::eval) walks the update AST per
//! cell, doing a `BTreeMap` grid lookup and heap `Point` arithmetic for every
//! neighbor access. That per-cell overhead is pure host-side interpreter
//! cost: the paper's performance model (Section 4, Eqs. 5–7) assumes each
//! tile kernel sustains one cell per `II` cycles with an unroll factor `U`,
//! which only holds when the update is lowered to a fixed datapath — exactly
//! what HLS does when it compiles the OpenCL kernel.
//!
//! [`CompiledProgram`] is that lowering for the functional executors: each
//! statement's expression becomes a flat postfix [`Op`] tape in which
//!
//! * grid names are resolved to dense slot indices over the sorted grid list
//!   (matching [`GridState`]'s `BTreeMap` order),
//! * neighbor offsets are pre-resolved to **linear-index deltas** for one
//!   fixed [`Extent`] (row-major strides), so a neighbor access is a single
//!   slice index `data[idx + delta]`,
//! * parameters are resolved to constants and constant subexpressions are
//!   folded at compile time — with the *same* `f64` operations evaluation
//!   would perform, so folding is bit-exact.
//!
//! Execution sweeps each statement's clipped domain row by row (last axis
//! contiguous), evaluating the tape on a reusable value stack with no
//! per-cell `Point` construction or bounds checks beyond slice indexing that
//! is proven in range once per row. An optional `U`-way unroll chunks the
//! row loop, mirroring the paper's unroll knob; per-cell arithmetic is
//! unchanged, so every unroll factor is bit-exact with `U = 1`.
//!
//! The AST interpreter remains the semantic oracle: `CompiledProgram`
//! reproduces its results **bit for bit** (same operation order per cell),
//! which the differential proptests in `stencilcl-lang` and `stencilcl-exec`
//! enforce.

use stencilcl_grid::{Extent, Rect};

use crate::ast::{BinOp, Expr, Func, Program, UnaryOp};
use crate::interp::GridState;
use crate::LangError;

/// One postfix bytecode operation of a compiled update expression.
///
/// The tape is evaluated left to right over a value stack; the stack effect
/// of each op matches the interpreter's evaluation order exactly (binary
/// operands are pushed left then right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push a literal (folded constants and resolved parameters included).
    Const(f64),
    /// Push `grids[slot][idx + delta]`, where `idx` is the linear index of
    /// the cell being computed and `delta` encodes the neighbor offset for
    /// the compiled extent.
    Load {
        /// Dense index into the sorted grid list.
        slot: u32,
        /// Row-major linear-index offset of the access.
        delta: i64,
    },
    /// Pop `b`, pop `a`, push `a + b`.
    Add,
    /// Pop `b`, pop `a`, push `a - b`.
    Sub,
    /// Pop `b`, pop `a`, push `a * b`.
    Mul,
    /// Pop `b`, pop `a`, push `a / b`.
    Div,
    /// Negate the top of stack.
    Neg,
    /// Pop `b`, pop `a`, push `a.min(b)`.
    Min,
    /// Pop `b`, pop `a`, push `a.max(b)`.
    Max,
    /// Replace the top of stack with its absolute value.
    Abs,
    /// Replace the top of stack with its square root.
    Sqrt,
}

/// One update statement lowered to a flat op tape.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Name of the grid the statement writes.
    target: String,
    /// Slot of the target grid in the sorted grid list.
    target_slot: u32,
    /// The postfix tape; evaluating it leaves exactly one value.
    tape: Box<[Op]>,
    /// Maximum stack depth the tape reaches.
    stack_need: usize,
}

impl CompiledKernel {
    /// Name of the grid this kernel writes.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Slot of the target grid in the compiled program's grid list.
    pub fn target_slot(&self) -> usize {
        self.target_slot as usize
    }

    /// The kernel's postfix op tape.
    pub fn tape(&self) -> &[Op] {
        &self.tape
    }

    /// Maximum value-stack depth evaluation reaches.
    pub fn stack_need(&self) -> usize {
        self.stack_need
    }
}

/// A whole stencil program compiled to bytecode kernels for one fixed grid
/// extent — the functional analogue of the per-tile kernel specialization
/// the framework's code generator performs when it emits one OpenCL kernel
/// per tile.
///
/// # Example
///
/// ```
/// use stencilcl_lang::{parse, CompiledProgram, GridState, Interpreter};
///
/// let p = parse(
///     "stencil avg { grid A[8] : f32; iterations 3;
///      A[i] = 0.5 * (A[i-1] + A[i+1]); }",
/// )?;
/// let compiled = CompiledProgram::compile(&p)?;
/// let init = |_: &str, pt: &stencilcl_grid::Point| pt.coord(0) as f64;
/// let mut fast = GridState::new(&p, init);
/// compiled.run(&mut fast, p.iterations)?;
/// // Bit-exact with the AST interpreter.
/// let mut slow = GridState::new(&p, init);
/// Interpreter::new(&p).run(&mut slow, p.iterations)?;
/// assert_eq!(fast, slow);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    extent: Extent,
    /// Sorted grid names; slot `i` of a view vector is `slots[i]`.
    slots: Vec<String>,
    kernels: Vec<CompiledKernel>,
    /// Per-statement updatable interior (grid shrunk by the statement's
    /// halo), identical to the interpreter's statement domains.
    domains: Vec<Rect>,
    unroll: usize,
}

/// A lowered expression fragment: its ops, plus the folded value when the
/// whole fragment is a compile-time constant.
struct Frag {
    ops: Vec<Op>,
    konst: Option<f64>,
}

impl Frag {
    fn konst(v: f64) -> Frag {
        Frag {
            ops: vec![Op::Const(v)],
            konst: Some(v),
        }
    }
}

impl CompiledProgram {
    /// Compiles every update statement of `program` for its declared extent.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] when the program references unknown grids or
    /// parameters (programs built via [`parse`](crate::parse) never do).
    pub fn compile(program: &Program) -> Result<Self, LangError> {
        let features = crate::StencilFeatures::extract(program)?;
        let extent = program.extent();
        let mut slots: Vec<String> = program.grids.iter().map(|g| g.name.clone()).collect();
        slots.sort();
        // Row-major strides of the compiled extent, last axis fastest.
        let mut strides = vec![0i64; extent.dim()];
        let mut acc = 1i64;
        for d in (0..extent.dim()).rev() {
            strides[d] = acc;
            acc *= extent.len(d) as i64;
        }
        let params: std::collections::BTreeMap<&str, f64> = program
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.value))
            .collect();
        let kernels = program
            .updates
            .iter()
            .map(|stmt| {
                let frag = lower(&stmt.rhs, &slots, &params, &strides)?;
                let target_slot = slot_of(&slots, &stmt.target)? as u32;
                let stack_need = stack_need(&frag.ops);
                Ok(CompiledKernel {
                    target: stmt.target.clone(),
                    target_slot,
                    tape: frag.ops.into_boxed_slice(),
                    stack_need,
                })
            })
            .collect::<Result<Vec<_>, LangError>>()?;
        // Statement domains, computed exactly like Interpreter::new.
        let full = Rect::from_extent(&extent);
        let domains = features
            .statements
            .iter()
            .map(|s| {
                let (mut lo, mut hi) = s.growth.amounts(1);
                for v in lo.iter_mut().chain(hi.iter_mut()) {
                    *v = -*v;
                }
                full.expand(&lo, &hi)
            })
            .collect();
        Ok(CompiledProgram {
            extent,
            slots,
            kernels,
            domains,
            unroll: 1,
        })
    }

    /// Returns the program recompiled with a `U`-way unrolled row loop.
    /// Values are identical for every `unroll` (per-cell arithmetic is
    /// unchanged); zero is treated as one.
    #[must_use]
    pub fn with_unroll(mut self, unroll: usize) -> Self {
        self.unroll = unroll.max(1);
        self
    }

    /// The unroll factor of the interior row sweep.
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// The extent the kernels were compiled for.
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Number of compiled update statements.
    pub fn statement_count(&self) -> usize {
        self.kernels.len()
    }

    /// The sorted grid names backing the dense slot indices: `Op::Load`'s
    /// `slot` field `i` reads the grid named `slots()[i]`.
    pub fn slots(&self) -> &[String] {
        &self.slots
    }

    /// The compiled kernel of statement `si`.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn kernel(&self, si: usize) -> &CompiledKernel {
        &self.kernels[si]
    }

    /// The domain statement `si` may update — identical to
    /// [`Interpreter::statement_domain`](crate::Interpreter::statement_domain).
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn statement_domain(&self, si: usize) -> Rect {
        self.domains[si]
    }

    /// Borrows every grid of `state` as a dense slice, in slot order.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when `state` lacks a grid or holds one
    /// with a different extent than the program was compiled for (linear
    /// deltas would silently read the wrong cells).
    pub fn views<'a>(&self, state: &'a GridState) -> Result<Vec<&'a [f64]>, LangError> {
        self.slots
            .iter()
            .map(|name| {
                let grid = state.grid(name)?;
                if grid.extent() != self.extent {
                    return Err(LangError::eval(format!(
                        "grid `{name}` has extent {} but the program was compiled for {}",
                        grid.extent(),
                        self.extent
                    )));
                }
                Ok(grid.as_slice())
            })
            .collect()
    }

    /// Evaluates statement `si`'s tape at linear cell index `idx`.
    ///
    /// `views` must come from [`Self::views`] and every access of the cell
    /// must be in bounds (guaranteed when `idx` lies inside
    /// [`Self::statement_domain`]); `stack` is reused scratch and is grown
    /// as needed.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range or an access leaves the grid (a caller
    /// domain bug, like the interpreter's out-of-bounds eval error).
    pub fn eval_idx(&self, si: usize, views: &[&[f64]], idx: usize, stack: &mut Vec<f64>) -> f64 {
        let kernel = &self.kernels[si];
        if stack.len() < kernel.stack_need {
            stack.resize(kernel.stack_need, 0.0);
        }
        eval_tape(&kernel.tape, views, idx, stack)
    }

    /// Applies statement `si` to every point of `domain` (clipped to the
    /// statement's updatable interior) with snapshot semantics — the
    /// compiled equivalent of
    /// [`Interpreter::apply_statement`](crate::Interpreter::apply_statement),
    /// bit-exact with it.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid or
    /// holds mismatched extents.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn apply_statement(
        &self,
        state: &mut GridState,
        si: usize,
        domain: &Rect,
    ) -> Result<(), LangError> {
        let clipped = domain.intersect(&self.domains[si])?;
        if clipped.is_empty() {
            return Ok(());
        }
        let kernel = &self.kernels[si];
        let mut values = Vec::with_capacity(clipped.volume() as usize);
        {
            let views = self.views(state)?;
            let mut stack = vec![0.0f64; kernel.stack_need];
            let row_len = clipped.len(clipped.dim() - 1) as usize;
            for start in clipped.row_starts() {
                let base = self.extent.linearize(&start)?;
                self.eval_row(kernel, &views, base, row_len, &mut stack, &mut values);
            }
        }
        let target = state.grid_mut(&kernel.target)?;
        target.write_window(&clipped, &values)?;
        Ok(())
    }

    /// Evaluates one contiguous row of `row_len` cells starting at linear
    /// index `base`, appending the results to `values`. The row loop is
    /// chunked by the unroll factor; per-cell arithmetic is identical, so
    /// results do not depend on `U`.
    pub(crate) fn eval_row(
        &self,
        kernel: &CompiledKernel,
        views: &[&[f64]],
        base: usize,
        row_len: usize,
        stack: &mut [f64],
        values: &mut Vec<f64>,
    ) {
        let u = self.unroll;
        let mut j = 0usize;
        while j + u <= row_len {
            for step in 0..u {
                values.push(eval_tape(&kernel.tape, views, base + j + step, stack));
            }
            j += u;
        }
        while j < row_len {
            values.push(eval_tape(&kernel.tape, views, base + j, stack));
            j += 1;
        }
    }

    /// Runs one full stencil iteration (all statements in order) over
    /// `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn step(&self, state: &mut GridState, domain: &Rect) -> Result<(), LangError> {
        for si in 0..self.kernels.len() {
            self.apply_statement(state, si, domain)?;
        }
        Ok(())
    }

    /// Runs `iterations` full-grid stencil iterations — the compiled
    /// counterpart of [`Interpreter::run`](crate::Interpreter::run).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn run(&self, state: &mut GridState, iterations: u64) -> Result<(), LangError> {
        let full = Rect::from_extent(&self.extent);
        for _ in 0..iterations {
            self.step(state, &full)?;
        }
        Ok(())
    }
}

/// Evaluates a tape at linear index `idx` with a manually managed stack
/// pointer; `stack` must be at least the tape's `stack_need` long.
#[inline]
fn eval_tape(tape: &[Op], views: &[&[f64]], idx: usize, stack: &mut [f64]) -> f64 {
    let mut sp = 0usize;
    for op in tape {
        match *op {
            Op::Const(v) => {
                stack[sp] = v;
                sp += 1;
            }
            Op::Load { slot, delta } => {
                // In-domain cells have every per-dimension neighbor
                // coordinate in bounds, so the linear form cannot wrap a
                // row: `idx + delta` is the exact row-major index.
                let at = idx as i64 + delta;
                stack[sp] = views[slot as usize][at as usize];
                sp += 1;
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Sub => {
                sp -= 1;
                stack[sp - 1] -= stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Div => {
                sp -= 1;
                stack[sp - 1] /= stack[sp];
            }
            Op::Neg => stack[sp - 1] = -stack[sp - 1],
            Op::Min => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].min(stack[sp]);
            }
            Op::Max => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].max(stack[sp]);
            }
            Op::Abs => stack[sp - 1] = stack[sp - 1].abs(),
            Op::Sqrt => stack[sp - 1] = stack[sp - 1].sqrt(),
        }
    }
    stack[0]
}

fn slot_of(slots: &[String], name: &str) -> Result<usize, LangError> {
    slots
        .binary_search_by(|s| s.as_str().cmp(name))
        .map_err(|_| LangError::eval(format!("no grid named `{name}`")))
}

/// Lowers `expr` to postfix ops, folding constant subtrees with the same
/// `f64` operations evaluation would perform (so folding is bit-exact).
/// Evaluation order is preserved: left operand ops precede right operand
/// ops, which precede the operator — the interpreter's exact order.
fn lower(
    expr: &Expr,
    slots: &[String],
    params: &std::collections::BTreeMap<&str, f64>,
    strides: &[i64],
) -> Result<Frag, LangError> {
    match expr {
        Expr::Number(v) => Ok(Frag::konst(*v)),
        Expr::Param(name) => params
            .get(name.as_str())
            .copied()
            .map(Frag::konst)
            .ok_or_else(|| LangError::eval(format!("unknown parameter `{name}`"))),
        Expr::Access { grid, offset } => {
            if offset.dim() != strides.len() {
                return Err(LangError::eval(format!(
                    "access to `{grid}` has {} index(es) but the grid is {}-dimensional",
                    offset.dim(),
                    strides.len()
                )));
            }
            let slot = slot_of(slots, grid)? as u32;
            let delta: i64 = (0..offset.dim())
                .map(|d| offset.coord(d) * strides[d])
                .sum();
            Ok(Frag {
                ops: vec![Op::Load { slot, delta }],
                konst: None,
            })
        }
        Expr::Unary(UnaryOp::Neg, e) => {
            let mut inner = lower(e, slots, params, strides)?;
            if let Some(v) = inner.konst {
                return Ok(Frag::konst(-v));
            }
            inner.ops.push(Op::Neg);
            Ok(inner)
        }
        Expr::Binary(op, a, b) => {
            let fa = lower(a, slots, params, strides)?;
            let fb = lower(b, slots, params, strides)?;
            if let (Some(x), Some(y)) = (fa.konst, fb.konst) {
                return Ok(Frag::konst(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                }));
            }
            let mut ops = fa.ops;
            ops.extend(fb.ops);
            ops.push(match op {
                BinOp::Add => Op::Add,
                BinOp::Sub => Op::Sub,
                BinOp::Mul => Op::Mul,
                BinOp::Div => Op::Div,
            });
            Ok(Frag { ops, konst: None })
        }
        Expr::Call(func, args) => {
            let frags = args
                .iter()
                .map(|a| lower(a, slots, params, strides))
                .collect::<Result<Vec<_>, _>>()?;
            if frags.iter().all(|f| f.konst.is_some()) {
                let vals: Vec<f64> = frags.iter().map(|f| f.konst.expect("all const")).collect();
                return Ok(Frag::konst(match func {
                    Func::Min => vals[0].min(vals[1]),
                    Func::Max => vals[0].max(vals[1]),
                    Func::Abs => vals[0].abs(),
                    Func::Sqrt => vals[0].sqrt(),
                }));
            }
            let mut ops = Vec::new();
            for f in frags {
                ops.extend(f.ops);
            }
            ops.push(match func {
                Func::Min => Op::Min,
                Func::Max => Op::Max,
                Func::Abs => Op::Abs,
                Func::Sqrt => Op::Sqrt,
            });
            Ok(Frag { ops, konst: None })
        }
    }
}

/// Maximum stack depth a tape reaches (every tape leaves exactly one value).
fn stack_need(ops: &[Op]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in ops {
        match op {
            Op::Const(_) | Op::Load { .. } => {
                depth += 1;
                max = max.max(depth);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Min | Op::Max => depth -= 1,
            Op::Neg | Op::Abs | Op::Sqrt => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Interpreter};
    use stencilcl_grid::Point;

    fn ramp(_: &str, p: &Point) -> f64 {
        let mut v = 1.0;
        for d in 0..p.dim() {
            v = v * 13.0 + p.coord(d) as f64;
        }
        (v * 0.01).sin() + 0.002 * v
    }

    #[test]
    fn constant_subexpressions_fold() {
        let p = parse(
            "stencil f { grid A[8] : f32; param c = 0.25; iterations 1;
             A[i] = (2.0 * 3.0 + 1.0) * A[i] + (c + c) * A[i-1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let tape = cp.kernel(0).tape();
        // `2.0 * 3.0 + 1.0` folds to 7.0 and `c + c` to 0.5; only two loads
        // and two constants survive.
        assert!(tape.contains(&Op::Const(7.0)));
        assert!(tape.contains(&Op::Const(0.5)));
        let loads = tape.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        assert_eq!(loads, 2);
        assert_eq!(tape.len(), 7); // 2 consts + 2 loads + 2 muls + 1 add
    }

    #[test]
    fn slots_are_sorted_grid_names() {
        let p = parse(
            "stencil m { grid Z[6] : f32; grid A[6] : f32 read_only; iterations 1;
             Z[i] = Z[i] + A[i]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        assert_eq!(cp.kernel(0).target(), "Z");
        assert_eq!(cp.kernel(0).target_slot(), 1); // A=0, Z=1 in sorted order
        let tape = cp.kernel(0).tape();
        assert_eq!(
            tape,
            &[
                Op::Load { slot: 1, delta: 0 },
                Op::Load { slot: 0, delta: 0 },
                Op::Add
            ]
        );
    }

    #[test]
    fn neighbor_offsets_become_linear_deltas() {
        let p = parse(
            "stencil d { grid A[6][10] : f32; iterations 1;
             A[i][j] = A[i-1][j] + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let tape = cp.kernel(0).tape();
        // Row-major [6 x 10]: stride of i is 10, of j is 1.
        assert_eq!(
            tape[0],
            Op::Load {
                slot: 0,
                delta: -10
            }
        );
        assert_eq!(tape[1], Op::Load { slot: 0, delta: 1 });
    }

    #[test]
    fn statement_domains_match_the_interpreter() {
        let p = parse(
            "stencil h { grid A[10][12] : f32; iterations 1;
             A[i][j] = A[i-2][j] + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        assert_eq!(cp.statement_domain(0), interp.statement_domain(0));
    }

    #[test]
    fn bit_exact_with_interpreter_across_intrinsics() {
        let p = parse(
            "stencil x { grid A[7][9] : f32; param w = 0.3; iterations 3;
             A[i][j] = max(min(A[i-1][j], A[i+1][j]), abs(A[i][j-1] - A[i][j+1]))
                       + w * sqrt(abs(A[i][j])) - (-A[i][j]); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let mut fast = GridState::new(&p, ramp);
        cp.run(&mut fast, p.iterations).unwrap();
        let mut slow = GridState::new(&p, ramp);
        Interpreter::new(&p).run(&mut slow, p.iterations).unwrap();
        assert_eq!(fast, slow); // bit-exact, not ≤ε
    }

    #[test]
    fn unroll_factors_are_bit_exact() {
        let p = parse(
            "stencil u { grid A[9][11] : f32; iterations 2;
             A[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]); }",
        )
        .unwrap();
        let base = CompiledProgram::compile(&p).unwrap();
        let mut expect = GridState::new(&p, ramp);
        base.run(&mut expect, p.iterations).unwrap();
        for u in [2usize, 3, 4, 8, 64] {
            let cp = CompiledProgram::compile(&p).unwrap().with_unroll(u);
            assert_eq!(cp.unroll(), u);
            let mut got = GridState::new(&p, ramp);
            cp.run(&mut got, p.iterations).unwrap();
            assert_eq!(got, expect, "unroll {u} diverged");
        }
        assert_eq!(base.with_unroll(0).unroll(), 1);
    }

    #[test]
    fn partial_domain_matches_interpreter() {
        let p = parse(
            "stencil pd { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[i][j] + 0.5 * A[i-1][j]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        let domain = Rect::new(Point::new2(2, 1), Point::new2(6, 5)).unwrap();
        let mut fast = GridState::new(&p, ramp);
        cp.apply_statement(&mut fast, 0, &domain).unwrap();
        let mut slow = GridState::new(&p, ramp);
        interp.apply_statement(&mut slow, 0, &domain).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn views_reject_mismatched_extents() {
        let p = parse("stencil v { grid A[8] : f32; iterations 1; A[i] = A[i]; }").unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let shrunk = p.with_extent(stencilcl_grid::Extent::new1(4));
        let state = GridState::uniform(&shrunk, 0.0);
        assert!(cp.views(&state).is_err());
        assert!(cp.run(&mut GridState::uniform(&shrunk, 0.0), 1).is_err());
    }

    #[test]
    fn eval_idx_matches_point_eval() {
        let p = parse(
            "stencil e { grid A[5][6] : f32; iterations 1;
             A[i][j] = A[i-1][j] * 2.0 + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        let state = GridState::new(&p, ramp);
        let views = cp.views(&state).unwrap();
        let mut stack = Vec::new();
        let at = Point::new2(2, 3);
        let idx = cp.extent().linearize(&at).unwrap();
        let got = cp.eval_idx(0, &views, idx, &mut stack);
        let want = interp.eval(&p.updates[0].rhs, &state, &at).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn stack_need_counts_deepest_nesting() {
        let p = parse(
            "stencil s { grid A[6] : f32; iterations 1;
             A[i] = A[i] + (A[i-1] + (A[i+1] + A[i])); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        assert_eq!(cp.kernel(0).stack_need(), 4);
        assert_eq!(cp.statement_count(), 1);
    }
}
