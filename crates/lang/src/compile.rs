//! Bytecode compilation of stencil update statements.
//!
//! [`Interpreter::eval`](crate::Interpreter::eval) walks the update AST per
//! cell, doing a `BTreeMap` grid lookup and heap `Point` arithmetic for every
//! neighbor access. That per-cell overhead is pure host-side interpreter
//! cost: the paper's performance model (Section 4, Eqs. 5–7) assumes each
//! tile kernel sustains one cell per `II` cycles with an unroll factor `U`,
//! which only holds when the update is lowered to a fixed datapath — exactly
//! what HLS does when it compiles the OpenCL kernel.
//!
//! [`CompiledProgram`] is that lowering for the functional executors: each
//! statement's expression becomes a flat postfix [`Op`] tape in which
//!
//! * grid names are resolved to dense slot indices over the sorted grid list
//!   (matching [`GridState`]'s `BTreeMap` order),
//! * neighbor offsets are pre-resolved to **linear-index deltas** for one
//!   fixed [`Extent`] (row-major strides), so a neighbor access is a single
//!   slice index `data[idx + delta]`,
//! * parameters are resolved to constants and constant subexpressions are
//!   folded at compile time — with the *same* `f64` operations evaluation
//!   would perform, so folding is bit-exact.
//!
//! Execution sweeps each statement's clipped domain row by row (last axis
//! contiguous), evaluating the tape on a reusable value stack with no
//! per-cell `Point` construction or bounds checks beyond slice indexing that
//! is proven in range once per row. An optional `U`-way unroll chunks the
//! scalar row loop, mirroring the paper's unroll knob; per-cell arithmetic
//! is unchanged, so every unroll factor is bit-exact with `U = 1`.
//!
//! # Lane-parallel tape walk
//!
//! By default the row sweep is *vectorized across cells*: one tape pass
//! evaluates `W` contiguous cells of a row at once over a lane-major stack
//! of `stack_need × W` values ([`LANE_WIDTH`] = 8 lanes; configure with
//! [`CompiledProgram::with_lanes`], `1` forces the scalar walk). Each op
//! applies the *same* `f64` operation independently per lane — a `Load`
//! becomes one contiguous slice copy `views[slot][idx+delta ..][..W]` — so
//! every cell still sees exactly the scalar op sequence and bit-exactness
//! is preserved *by construction*: only the loop over cells is widened,
//! never the arithmetic within one cell. The fixed-width inner loops are
//! written structure-of-lanes so the autovectorizer lowers them to SIMD
//! without `unsafe`. Row tails shorter than `W` fall back to the scalar
//! walk.
//!
//! # Statement fusion
//!
//! Consecutive statements that share a statement domain, write pairwise
//! distinct targets, and never read an earlier group member's target are
//! fused into one row pass ([`CompiledProgram::fused_groups`]): the row's
//! input cells are hot in cache for every member tape instead of being
//! streamed once per statement. Because member evaluations read only the
//! pre-statement snapshot (all writes are buffered until the sweep ends,
//! exactly like the unfused path) and no member reads another's target,
//! fused results are bit-identical to running the statements sequentially.
//!
//! The AST interpreter remains the semantic oracle: `CompiledProgram`
//! reproduces its results **bit for bit** (same operation order per cell),
//! which the differential proptests in `stencilcl-lang` and `stencilcl-exec`
//! enforce.

use stencilcl_grid::{Extent, Rect};

use crate::ast::{BinOp, Expr, Func, Program, UnaryOp};
use crate::interp::GridState;
use crate::LangError;

/// Default (and maximum) number of lanes of the vectorized tape walk: one
/// tape pass evaluates this many contiguous row cells.
pub const LANE_WIDTH: usize = 8;

/// Reusable evaluation scratch for the row sweeps: the scalar value stack
/// plus the lane-major stack of the vector walk (`stack_need × W` values,
/// level-major). One instance can be shared across statements and rows;
/// the buffers only ever grow.
#[derive(Debug, Default)]
pub struct EvalScratch {
    stack: Vec<f64>,
    lanes: Vec<f64>,
}

/// Reusable scratch for repeated [`CompiledProgram::apply_statement_with`]
/// / [`CompiledProgram::apply_fused_with`] calls: the evaluation scratch
/// plus the per-statement write buffers, allocated once and reused across
/// statements, fused iterations, and tiles. The tile executors call the
/// apply entry points thousands of times per run; threading one
/// `FusedScratch` through keeps the allocator out of that loop.
#[derive(Debug, Default)]
pub struct FusedScratch {
    eval: EvalScratch,
    buffers: Vec<Vec<f64>>,
}

impl FusedScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> FusedScratch {
        FusedScratch::default()
    }

    /// The first `n` value buffers, cleared, growing the pool on demand.
    fn cleared(&mut self, n: usize) -> &mut [Vec<f64>] {
        if self.buffers.len() < n {
            self.buffers.resize_with(n, Vec::new);
        }
        for buf in &mut self.buffers[..n] {
            buf.clear();
        }
        &mut self.buffers[..n]
    }
}

/// One postfix bytecode operation of a compiled update expression.
///
/// The tape is evaluated left to right over a value stack; the stack effect
/// of each op matches the interpreter's evaluation order exactly (binary
/// operands are pushed left then right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push a literal (folded constants and resolved parameters included).
    Const(f64),
    /// Push `grids[slot][idx + delta]`, where `idx` is the linear index of
    /// the cell being computed and `delta` encodes the neighbor offset for
    /// the compiled extent.
    Load {
        /// Dense index into the sorted grid list.
        slot: u32,
        /// Row-major linear-index offset of the access.
        delta: i64,
    },
    /// Pop `b`, pop `a`, push `a + b`.
    Add,
    /// Pop `b`, pop `a`, push `a - b`.
    Sub,
    /// Pop `b`, pop `a`, push `a * b`.
    Mul,
    /// Pop `b`, pop `a`, push `a / b`.
    Div,
    /// Negate the top of stack.
    Neg,
    /// Pop `b`, pop `a`, push `a.min(b)`.
    Min,
    /// Pop `b`, pop `a`, push `a.max(b)`.
    Max,
    /// Replace the top of stack with its absolute value.
    Abs,
    /// Replace the top of stack with its square root.
    Sqrt,
}

/// One update statement lowered to a flat op tape.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Name of the grid the statement writes.
    target: String,
    /// Slot of the target grid in the sorted grid list.
    target_slot: u32,
    /// The postfix tape; evaluating it leaves exactly one value.
    tape: Box<[Op]>,
    /// Maximum stack depth the tape reaches.
    stack_need: usize,
    /// Most negative `Load` delta of the tape (0 when the tape never
    /// loads): the farthest a cell's accesses reach *before* its own
    /// linear index.
    min_delta: i64,
    /// Most positive `Load` delta of the tape (0 when the tape never
    /// loads).
    max_delta: i64,
}

impl CompiledKernel {
    /// Name of the grid this kernel writes.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Slot of the target grid in the compiled program's grid list.
    pub fn target_slot(&self) -> usize {
        self.target_slot as usize
    }

    /// The kernel's postfix op tape.
    pub fn tape(&self) -> &[Op] {
        &self.tape
    }

    /// Maximum value-stack depth evaluation reaches.
    pub fn stack_need(&self) -> usize {
        self.stack_need
    }

    /// The most negative and most positive `Load` deltas of the tape
    /// (`(0, 0)` when the tape never loads). Every access of linear cell
    /// `idx` lies in `idx + min_delta ..= idx + max_delta`.
    pub fn delta_bounds(&self) -> (i64, i64) {
        (self.min_delta, self.max_delta)
    }
}

/// A whole stencil program compiled to bytecode kernels for one fixed grid
/// extent — the functional analogue of the per-tile kernel specialization
/// the framework's code generator performs when it emits one OpenCL kernel
/// per tile.
///
/// # Example
///
/// ```
/// use stencilcl_lang::{parse, CompiledProgram, GridState, Interpreter};
///
/// let p = parse(
///     "stencil avg { grid A[8] : f32; iterations 3;
///      A[i] = 0.5 * (A[i-1] + A[i+1]); }",
/// )?;
/// let compiled = CompiledProgram::compile(&p)?;
/// let init = |_: &str, pt: &stencilcl_grid::Point| pt.coord(0) as f64;
/// let mut fast = GridState::new(&p, init);
/// compiled.run(&mut fast, p.iterations)?;
/// // Bit-exact with the AST interpreter.
/// let mut slow = GridState::new(&p, init);
/// Interpreter::new(&p).run(&mut slow, p.iterations)?;
/// assert_eq!(fast, slow);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    extent: Extent,
    /// Sorted grid names; slot `i` of a view vector is `slots[i]`.
    slots: Vec<String>,
    kernels: Vec<CompiledKernel>,
    /// Per-statement updatable interior (grid shrunk by the statement's
    /// halo), identical to the interpreter's statement domains.
    domains: Vec<Rect>,
    /// Maximal runs of consecutive statements legal to fuse into one row
    /// pass (singleton groups when fusion does not apply).
    fused_groups: Vec<Vec<usize>>,
    /// Total cell count of the compiled extent; linear indices are valid
    /// in `0..cells`.
    cells: usize,
    unroll: usize,
    lanes: usize,
}

/// A lowered expression fragment: its ops, plus the folded value when the
/// whole fragment is a compile-time constant.
struct Frag {
    ops: Vec<Op>,
    konst: Option<f64>,
}

impl Frag {
    fn konst(v: f64) -> Frag {
        Frag {
            ops: vec![Op::Const(v)],
            konst: Some(v),
        }
    }
}

impl CompiledProgram {
    /// Compiles every update statement of `program` for its declared extent.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] when the program references unknown grids or
    /// parameters (programs built via [`parse`](crate::parse) never do).
    pub fn compile(program: &Program) -> Result<Self, LangError> {
        let features = crate::StencilFeatures::extract(program)?;
        let extent = program.extent();
        let mut slots: Vec<String> = program.grids.iter().map(|g| g.name.clone()).collect();
        slots.sort();
        // Row-major strides of the compiled extent, last axis fastest.
        let mut strides = vec![0i64; extent.dim()];
        let mut acc = 1i64;
        for d in (0..extent.dim()).rev() {
            strides[d] = acc;
            acc *= extent.len(d) as i64;
        }
        let params: std::collections::BTreeMap<&str, f64> = program
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.value))
            .collect();
        let kernels = program
            .updates
            .iter()
            .map(|stmt| {
                let frag = lower(&stmt.rhs, &slots, &params, &strides)?;
                let target_slot = slot_of(&slots, &stmt.target)? as u32;
                let stack_need = stack_need(&frag.ops);
                let (mut min_delta, mut max_delta) = (0i64, 0i64);
                for op in &frag.ops {
                    if let Op::Load { delta, .. } = op {
                        min_delta = min_delta.min(*delta);
                        max_delta = max_delta.max(*delta);
                    }
                }
                Ok(CompiledKernel {
                    target: stmt.target.clone(),
                    target_slot,
                    tape: frag.ops.into_boxed_slice(),
                    stack_need,
                    min_delta,
                    max_delta,
                })
            })
            .collect::<Result<Vec<_>, LangError>>()?;
        // Statement domains, computed exactly like Interpreter::new.
        let full = Rect::from_extent(&extent);
        let domains: Vec<Rect> = features
            .statements
            .iter()
            .map(|s| {
                let (mut lo, mut hi) = s.growth.amounts(1);
                for v in lo.iter_mut().chain(hi.iter_mut()) {
                    *v = -*v;
                }
                full.expand(&lo, &hi)
            })
            .collect();
        let fused_groups = fuse_statements(&kernels, &domains);
        let cells = (0..extent.dim()).map(|d| extent.len(d)).product();
        Ok(CompiledProgram {
            extent,
            slots,
            kernels,
            domains,
            fused_groups,
            cells,
            unroll: 1,
            lanes: LANE_WIDTH,
        })
    }

    /// Returns the program recompiled with a `U`-way unrolled row loop.
    /// Values are identical for every `unroll` (per-cell arithmetic is
    /// unchanged); zero is treated as one.
    #[must_use]
    pub fn with_unroll(mut self, unroll: usize) -> Self {
        self.unroll = unroll.max(1);
        self
    }

    /// The unroll factor of the interior row sweep.
    pub fn unroll(&self) -> usize {
        self.unroll
    }

    /// Returns the program with a `lanes`-wide vectorized tape walk.
    /// Values are identical for every width (lanes evaluate the scalar op
    /// sequence independently per cell); `1` forces the scalar walk, zero
    /// is treated as one, and widths are capped at [`LANE_WIDTH`].
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.clamp(1, LANE_WIDTH);
        self
    }

    /// The configured lane width of the vectorized tape walk.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The effective main-loop lane width: the largest supported power of
    /// two not exceeding the configured width (`1` means scalar).
    fn lane_width(&self) -> usize {
        match self.lanes {
            w if w >= 8 => 8,
            w if w >= 4 => 4,
            w if w >= 2 => 2,
            _ => 1,
        }
    }

    /// Maximal runs of consecutive statements fused into one row pass.
    /// Groups partition `0..statement_count()` in order; a singleton group
    /// means the statement runs alone.
    pub fn fused_groups(&self) -> &[Vec<usize>] {
        &self.fused_groups
    }

    /// The extent the kernels were compiled for.
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Number of compiled update statements.
    pub fn statement_count(&self) -> usize {
        self.kernels.len()
    }

    /// The sorted grid names backing the dense slot indices: `Op::Load`'s
    /// `slot` field `i` reads the grid named `slots()[i]`.
    pub fn slots(&self) -> &[String] {
        &self.slots
    }

    /// The compiled kernel of statement `si`.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn kernel(&self, si: usize) -> &CompiledKernel {
        &self.kernels[si]
    }

    /// The domain statement `si` may update — identical to
    /// [`Interpreter::statement_domain`](crate::Interpreter::statement_domain).
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn statement_domain(&self, si: usize) -> Rect {
        self.domains[si]
    }

    /// Borrows every grid of `state` as a dense slice, in slot order.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when `state` lacks a grid or holds one
    /// with a different extent than the program was compiled for (linear
    /// deltas would silently read the wrong cells).
    pub fn views<'a>(&self, state: &'a GridState) -> Result<Vec<&'a [f64]>, LangError> {
        self.slots
            .iter()
            .map(|name| {
                let grid = state.grid(name)?;
                if grid.extent() != self.extent {
                    return Err(LangError::eval(format!(
                        "grid `{name}` has extent {} but the program was compiled for {}",
                        grid.extent(),
                        self.extent
                    )));
                }
                Ok(grid.as_slice())
            })
            .collect()
    }

    /// Evaluates statement `si`'s tape at linear cell index `idx`.
    ///
    /// `views` must come from [`Self::views`] and every access of the cell
    /// must be in bounds (guaranteed when `idx` lies inside
    /// [`Self::statement_domain`]); `stack` is reused scratch and is grown
    /// as needed.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range or an access leaves the grid (a caller
    /// domain bug, like the interpreter's out-of-bounds eval error).
    pub fn eval_idx(&self, si: usize, views: &[&[f64]], idx: usize, stack: &mut Vec<f64>) -> f64 {
        let kernel = &self.kernels[si];
        if stack.len() < kernel.stack_need {
            stack.resize(kernel.stack_need, 0.0);
        }
        eval_tape(&kernel.tape, views, idx, stack)
    }

    /// Applies statement `si` to every point of `domain` (clipped to the
    /// statement's updatable interior) with snapshot semantics — the
    /// compiled equivalent of
    /// [`Interpreter::apply_statement`](crate::Interpreter::apply_statement),
    /// bit-exact with it.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid or
    /// holds mismatched extents.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn apply_statement(
        &self,
        state: &mut GridState,
        si: usize,
        domain: &Rect,
    ) -> Result<(), LangError> {
        self.apply_statement_with(state, si, domain, &mut FusedScratch::default())
    }

    /// [`Self::apply_statement`] with caller-owned scratch: the value
    /// buffer and evaluation stacks live in `scratch` and are reused
    /// across calls, so a tight apply loop performs no per-call heap
    /// allocation after warm-up.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid
    /// or holds mismatched extents.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn apply_statement_with(
        &self,
        state: &mut GridState,
        si: usize,
        domain: &Rect,
        scratch: &mut FusedScratch,
    ) -> Result<(), LangError> {
        let clipped = domain.intersect(&self.domains[si])?;
        if clipped.is_empty() {
            return Ok(());
        }
        let kernel = &self.kernels[si];
        scratch.cleared(1);
        let FusedScratch { eval, buffers } = scratch;
        let values = &mut buffers[0];
        values.reserve(clipped.volume() as usize);
        {
            let views = self.views(state)?;
            let row_len = clipped.len(clipped.dim() - 1) as usize;
            for start in clipped.row_starts() {
                let base = self.extent.linearize(&start)?;
                self.check_row(kernel, base, row_len)?;
                self.eval_row(kernel, &views, base, row_len, eval, values);
            }
        }
        let target = state.grid_mut(&kernel.target)?;
        target.write_window(&clipped, values)?;
        Ok(())
    }

    /// Applies a fused statement group over `domain` in one row pass: all
    /// member tapes are evaluated per row (the row's inputs stay hot in
    /// cache), every write buffered until the sweep ends. Bit-identical to
    /// applying the members sequentially — fusion legality (shared domain,
    /// distinct targets, no member reads an earlier member's target)
    /// guarantees the sequential run would see exactly the same snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid
    /// or holds mismatched extents.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty or any member index is out of range.
    pub fn apply_fused(
        &self,
        state: &mut GridState,
        group: &[usize],
        domain: &Rect,
    ) -> Result<(), LangError> {
        self.apply_fused_with(state, group, domain, &mut FusedScratch::default())
    }

    /// [`Self::apply_fused`] with caller-owned scratch: the per-member
    /// write buffers and evaluation stacks live in `scratch` and are
    /// reused across calls (see [`FusedScratch`]).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid
    /// or holds mismatched extents.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty or any member index is out of range.
    pub fn apply_fused_with(
        &self,
        state: &mut GridState,
        group: &[usize],
        domain: &Rect,
        scratch: &mut FusedScratch,
    ) -> Result<(), LangError> {
        if group.len() == 1 {
            return self.apply_statement_with(state, group[0], domain, scratch);
        }
        let clipped = domain.intersect(&self.domains[group[0]])?;
        if clipped.is_empty() {
            return Ok(());
        }
        let volume = clipped.volume() as usize;
        scratch.cleared(group.len());
        let FusedScratch { eval, buffers } = scratch;
        let buffers = &mut buffers[..group.len()];
        for buf in buffers.iter_mut() {
            buf.reserve(volume);
        }
        {
            let views = self.views(state)?;
            let row_len = clipped.len(clipped.dim() - 1) as usize;
            for start in clipped.row_starts() {
                let base = self.extent.linearize(&start)?;
                for (buf, &si) in buffers.iter_mut().zip(group) {
                    let kernel = &self.kernels[si];
                    self.check_row(kernel, base, row_len)?;
                    self.eval_row(kernel, &views, base, row_len, eval, buf);
                }
            }
        }
        for (buf, &si) in buffers.iter().zip(group) {
            let target = state.grid_mut(&self.kernels[si].target)?;
            target.write_window(&clipped, buf)?;
        }
        Ok(())
    }

    /// Evaluates statement `si` over one contiguous row of `row_len` cells
    /// starting at linear index `base`, appending results to `values` —
    /// the checked public entry to the (vectorized) row sweep for callers
    /// that manage their own domains.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when `views` does not match the
    /// compiled slot list or the row's accesses would leave the grid
    /// (checked with signed offset arithmetic: a negative neighbor delta
    /// near the origin fails cleanly instead of wrapping).
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn eval_row_into(
        &self,
        si: usize,
        views: &[&[f64]],
        base: usize,
        row_len: usize,
        scratch: &mut EvalScratch,
        values: &mut Vec<f64>,
    ) -> Result<(), LangError> {
        if views.len() != self.slots.len() {
            return Err(LangError::eval(format!(
                "expected {} grid views, got {}",
                self.slots.len(),
                views.len()
            )));
        }
        let kernel = &self.kernels[si];
        self.check_row(kernel, base, row_len)?;
        self.eval_row(kernel, views, base, row_len, scratch, values);
        Ok(())
    }

    /// Verifies with signed arithmetic that every access of the row
    /// `[base, base + row_len)` stays inside the compiled extent; raw
    /// `idx + delta → usize` casts downstream cannot wrap once this holds.
    fn check_row(
        &self,
        kernel: &CompiledKernel,
        base: usize,
        row_len: usize,
    ) -> Result<(), LangError> {
        if row_len == 0 {
            return Ok(());
        }
        let first = (base as i64).checked_add(kernel.min_delta);
        let last = (base as i64)
            .checked_add(row_len as i64 - 1)
            .and_then(|l| l.checked_add(kernel.max_delta));
        match (first, last) {
            (Some(lo), Some(hi)) if lo >= 0 && hi < self.cells as i64 => Ok(()),
            _ => Err(LangError::eval(format!(
                "row [{base}, {}) of `{}` reaches linear indices outside the \
                 grid (deltas {}..={}, {} cells)",
                base + row_len,
                kernel.target,
                kernel.min_delta,
                kernel.max_delta,
                self.cells
            ))),
        }
    }

    /// Evaluates one contiguous row of `row_len` cells starting at linear
    /// index `base`, appending the results to `values`. The main loop
    /// walks the tape once per `W` lanes (scalar tail); with lanes = 1 it
    /// is chunked by the unroll factor instead. Per-cell arithmetic is
    /// identical in every mode, so results depend on neither `W` nor `U`.
    /// Callers must have validated the row via [`Self::check_row`].
    fn eval_row(
        &self,
        kernel: &CompiledKernel,
        views: &[&[f64]],
        base: usize,
        row_len: usize,
        scratch: &mut EvalScratch,
        values: &mut Vec<f64>,
    ) {
        if scratch.stack.len() < kernel.stack_need {
            scratch.stack.resize(kernel.stack_need, 0.0);
        }
        match self.lane_width() {
            8 => eval_row_lanes::<8>(kernel, views, base, row_len, scratch, values),
            4 => eval_row_lanes::<4>(kernel, views, base, row_len, scratch, values),
            2 => eval_row_lanes::<2>(kernel, views, base, row_len, scratch, values),
            _ => {
                let u = self.unroll;
                let mut j = 0usize;
                while j + u <= row_len {
                    for step in 0..u {
                        values.push(eval_tape(
                            &kernel.tape,
                            views,
                            base + j + step,
                            &mut scratch.stack,
                        ));
                    }
                    j += u;
                }
                while j < row_len {
                    values.push(eval_tape(&kernel.tape, views, base + j, &mut scratch.stack));
                    j += 1;
                }
            }
        }
    }

    /// Runs one full stencil iteration (all statement groups in order)
    /// over `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn step(&self, state: &mut GridState, domain: &Rect) -> Result<(), LangError> {
        for group in &self.fused_groups {
            self.apply_fused(state, group, domain)?;
        }
        Ok(())
    }

    /// Runs `iterations` full-grid stencil iterations — the compiled
    /// counterpart of [`Interpreter::run`](crate::Interpreter::run).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn run(&self, state: &mut GridState, iterations: u64) -> Result<(), LangError> {
        let full = Rect::from_extent(&self.extent);
        for _ in 0..iterations {
            self.step(state, &full)?;
        }
        Ok(())
    }
}

/// Sweeps one row with a `W`-lane main loop and a scalar tail: chunks of
/// `W` contiguous cells share one tape pass, cells past the last full
/// chunk go through the scalar walk. `scratch.stack` must already hold
/// `stack_need` slots and the caller must have validated the row bounds.
fn eval_row_lanes<const W: usize>(
    kernel: &CompiledKernel,
    views: &[&[f64]],
    base: usize,
    row_len: usize,
    scratch: &mut EvalScratch,
    values: &mut Vec<f64>,
) {
    let need = kernel.stack_need * W;
    if scratch.lanes.len() < need {
        scratch.lanes.resize(need, 0.0);
    }
    let mut j = 0usize;
    while j + W <= row_len {
        eval_tape_lanes::<W>(&kernel.tape, views, base + j, &mut scratch.lanes, values);
        j += W;
    }
    while j < row_len {
        values.push(eval_tape(&kernel.tape, views, base + j, &mut scratch.stack));
        j += 1;
    }
}

/// Evaluates a tape for `W` contiguous cells `idx..idx + W` in one pass
/// over a lane-major stack (`level * W + lane`), appending the `W` results
/// to `values`. Lane `l` performs exactly the `f64` op sequence the scalar
/// walk performs at `idx + l` — ops never mix lanes — so the results are
/// bit-identical to `W` scalar evaluations; only the cell loop is widened.
/// The fixed `W`-length inner loops autovectorize.
#[inline]
fn eval_tape_lanes<const W: usize>(
    tape: &[Op],
    views: &[&[f64]],
    idx: usize,
    stack: &mut [f64],
    values: &mut Vec<f64>,
) {
    // Lane-wise binary op: pop `b`, combine into `a`.
    macro_rules! bin {
        ($sp:ident, $stack:ident, $f:expr) => {{
            $sp -= 1;
            let (lo, hi) = $stack.split_at_mut($sp * W);
            let a = &mut lo[($sp - 1) * W..];
            let b = &hi[..W];
            for l in 0..W {
                a[l] = $f(a[l], b[l]);
            }
        }};
    }
    // Lane-wise unary op on the top of stack.
    macro_rules! un {
        ($sp:ident, $stack:ident, $f:expr) => {{
            let t = &mut $stack[($sp - 1) * W..$sp * W];
            for l in 0..W {
                t[l] = $f(t[l]);
            }
        }};
    }
    let mut sp = 0usize;
    for op in tape {
        match *op {
            Op::Const(v) => {
                stack[sp * W..(sp + 1) * W].fill(v);
                sp += 1;
            }
            Op::Load { slot, delta } => {
                // The caller validated the whole row with signed
                // arithmetic (`check_row`), so this cast cannot wrap and
                // all `W` lanes are in bounds.
                let at = (idx as i64 + delta) as usize;
                stack[sp * W..(sp + 1) * W].copy_from_slice(&views[slot as usize][at..at + W]);
                sp += 1;
            }
            Op::Add => bin!(sp, stack, |a, b| a + b),
            Op::Sub => bin!(sp, stack, |a, b| a - b),
            Op::Mul => bin!(sp, stack, |a, b| a * b),
            Op::Div => bin!(sp, stack, |a, b| a / b),
            Op::Neg => un!(sp, stack, |a: f64| -a),
            Op::Min => bin!(sp, stack, f64::min),
            Op::Max => bin!(sp, stack, f64::max),
            Op::Abs => un!(sp, stack, f64::abs),
            Op::Sqrt => un!(sp, stack, f64::sqrt),
        }
    }
    values.extend_from_slice(&stack[..W]);
}

/// Partitions the statement list into maximal fusable runs: consecutive
/// statements join a group when they share the group's statement domain,
/// write a target no earlier member writes, and read no earlier member's
/// target (at any offset) — the exact conditions under which one buffered
/// row pass is bit-identical to running the members sequentially.
fn fuse_statements(kernels: &[CompiledKernel], domains: &[Rect]) -> Vec<Vec<usize>> {
    fn reads_slot(tape: &[Op], slot: u32) -> bool {
        tape.iter()
            .any(|op| matches!(op, Op::Load { slot: s, .. } if *s == slot))
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for si in 0..kernels.len() {
        let joins = groups.last().is_some_and(|g| {
            domains[si] == domains[g[0]]
                && g.iter().all(|&p| {
                    kernels[p].target_slot != kernels[si].target_slot
                        && !reads_slot(&kernels[si].tape, kernels[p].target_slot)
                })
        });
        match groups.last_mut() {
            Some(g) if joins => g.push(si),
            _ => groups.push(vec![si]),
        }
    }
    groups
}

/// Evaluates a tape at linear index `idx` with a manually managed stack
/// pointer; `stack` must be at least the tape's `stack_need` long.
#[inline]
fn eval_tape(tape: &[Op], views: &[&[f64]], idx: usize, stack: &mut [f64]) -> f64 {
    let mut sp = 0usize;
    for op in tape {
        match *op {
            Op::Const(v) => {
                stack[sp] = v;
                sp += 1;
            }
            Op::Load { slot, delta } => {
                // In-domain cells have every per-dimension neighbor
                // coordinate in bounds, so the linear form cannot wrap a
                // row: `idx + delta` is the exact row-major index.
                let at = idx as i64 + delta;
                stack[sp] = views[slot as usize][at as usize];
                sp += 1;
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Sub => {
                sp -= 1;
                stack[sp - 1] -= stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Div => {
                sp -= 1;
                stack[sp - 1] /= stack[sp];
            }
            Op::Neg => stack[sp - 1] = -stack[sp - 1],
            Op::Min => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].min(stack[sp]);
            }
            Op::Max => {
                sp -= 1;
                stack[sp - 1] = stack[sp - 1].max(stack[sp]);
            }
            Op::Abs => stack[sp - 1] = stack[sp - 1].abs(),
            Op::Sqrt => stack[sp - 1] = stack[sp - 1].sqrt(),
        }
    }
    stack[0]
}

fn slot_of(slots: &[String], name: &str) -> Result<usize, LangError> {
    slots
        .binary_search_by(|s| s.as_str().cmp(name))
        .map_err(|_| LangError::eval(format!("no grid named `{name}`")))
}

/// Lowers `expr` to postfix ops, folding constant subtrees with the same
/// `f64` operations evaluation would perform (so folding is bit-exact).
/// Evaluation order is preserved: left operand ops precede right operand
/// ops, which precede the operator — the interpreter's exact order.
fn lower(
    expr: &Expr,
    slots: &[String],
    params: &std::collections::BTreeMap<&str, f64>,
    strides: &[i64],
) -> Result<Frag, LangError> {
    match expr {
        Expr::Number(v) => Ok(Frag::konst(*v)),
        Expr::Param(name) => params
            .get(name.as_str())
            .copied()
            .map(Frag::konst)
            .ok_or_else(|| LangError::eval(format!("unknown parameter `{name}`"))),
        Expr::Access { grid, offset } => {
            if offset.dim() != strides.len() {
                return Err(LangError::eval(format!(
                    "access to `{grid}` has {} index(es) but the grid is {}-dimensional",
                    offset.dim(),
                    strides.len()
                )));
            }
            let slot = slot_of(slots, grid)? as u32;
            let delta: i64 = (0..offset.dim())
                .map(|d| offset.coord(d) * strides[d])
                .sum();
            Ok(Frag {
                ops: vec![Op::Load { slot, delta }],
                konst: None,
            })
        }
        Expr::Unary(UnaryOp::Neg, e) => {
            let mut inner = lower(e, slots, params, strides)?;
            if let Some(v) = inner.konst {
                return Ok(Frag::konst(-v));
            }
            inner.ops.push(Op::Neg);
            Ok(inner)
        }
        Expr::Binary(op, a, b) => {
            let fa = lower(a, slots, params, strides)?;
            let fb = lower(b, slots, params, strides)?;
            if let (Some(x), Some(y)) = (fa.konst, fb.konst) {
                return Ok(Frag::konst(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                }));
            }
            let mut ops = fa.ops;
            ops.extend(fb.ops);
            ops.push(match op {
                BinOp::Add => Op::Add,
                BinOp::Sub => Op::Sub,
                BinOp::Mul => Op::Mul,
                BinOp::Div => Op::Div,
            });
            Ok(Frag { ops, konst: None })
        }
        Expr::Call(func, args) => {
            let frags = args
                .iter()
                .map(|a| lower(a, slots, params, strides))
                .collect::<Result<Vec<_>, _>>()?;
            if frags.iter().all(|f| f.konst.is_some()) {
                let vals: Vec<f64> = frags.iter().map(|f| f.konst.expect("all const")).collect();
                return Ok(Frag::konst(match func {
                    Func::Min => vals[0].min(vals[1]),
                    Func::Max => vals[0].max(vals[1]),
                    Func::Abs => vals[0].abs(),
                    Func::Sqrt => vals[0].sqrt(),
                }));
            }
            let mut ops = Vec::new();
            for f in frags {
                ops.extend(f.ops);
            }
            ops.push(match func {
                Func::Min => Op::Min,
                Func::Max => Op::Max,
                Func::Abs => Op::Abs,
                Func::Sqrt => Op::Sqrt,
            });
            Ok(Frag { ops, konst: None })
        }
    }
}

/// Maximum stack depth a tape reaches (every tape leaves exactly one value).
fn stack_need(ops: &[Op]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for op in ops {
        match op {
            Op::Const(_) | Op::Load { .. } => {
                depth += 1;
                max = max.max(depth);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Min | Op::Max => depth -= 1,
            Op::Neg | Op::Abs | Op::Sqrt => {}
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Interpreter};
    use stencilcl_grid::Point;

    fn ramp(_: &str, p: &Point) -> f64 {
        let mut v = 1.0;
        for d in 0..p.dim() {
            v = v * 13.0 + p.coord(d) as f64;
        }
        (v * 0.01).sin() + 0.002 * v
    }

    #[test]
    fn constant_subexpressions_fold() {
        let p = parse(
            "stencil f { grid A[8] : f32; param c = 0.25; iterations 1;
             A[i] = (2.0 * 3.0 + 1.0) * A[i] + (c + c) * A[i-1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let tape = cp.kernel(0).tape();
        // `2.0 * 3.0 + 1.0` folds to 7.0 and `c + c` to 0.5; only two loads
        // and two constants survive.
        assert!(tape.contains(&Op::Const(7.0)));
        assert!(tape.contains(&Op::Const(0.5)));
        let loads = tape.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        assert_eq!(loads, 2);
        assert_eq!(tape.len(), 7); // 2 consts + 2 loads + 2 muls + 1 add
    }

    #[test]
    fn slots_are_sorted_grid_names() {
        let p = parse(
            "stencil m { grid Z[6] : f32; grid A[6] : f32 read_only; iterations 1;
             Z[i] = Z[i] + A[i]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        assert_eq!(cp.kernel(0).target(), "Z");
        assert_eq!(cp.kernel(0).target_slot(), 1); // A=0, Z=1 in sorted order
        let tape = cp.kernel(0).tape();
        assert_eq!(
            tape,
            &[
                Op::Load { slot: 1, delta: 0 },
                Op::Load { slot: 0, delta: 0 },
                Op::Add
            ]
        );
    }

    #[test]
    fn neighbor_offsets_become_linear_deltas() {
        let p = parse(
            "stencil d { grid A[6][10] : f32; iterations 1;
             A[i][j] = A[i-1][j] + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let tape = cp.kernel(0).tape();
        // Row-major [6 x 10]: stride of i is 10, of j is 1.
        assert_eq!(
            tape[0],
            Op::Load {
                slot: 0,
                delta: -10
            }
        );
        assert_eq!(tape[1], Op::Load { slot: 0, delta: 1 });
    }

    #[test]
    fn statement_domains_match_the_interpreter() {
        let p = parse(
            "stencil h { grid A[10][12] : f32; iterations 1;
             A[i][j] = A[i-2][j] + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        assert_eq!(cp.statement_domain(0), interp.statement_domain(0));
    }

    #[test]
    fn bit_exact_with_interpreter_across_intrinsics() {
        let p = parse(
            "stencil x { grid A[7][9] : f32; param w = 0.3; iterations 3;
             A[i][j] = max(min(A[i-1][j], A[i+1][j]), abs(A[i][j-1] - A[i][j+1]))
                       + w * sqrt(abs(A[i][j])) - (-A[i][j]); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let mut fast = GridState::new(&p, ramp);
        cp.run(&mut fast, p.iterations).unwrap();
        let mut slow = GridState::new(&p, ramp);
        Interpreter::new(&p).run(&mut slow, p.iterations).unwrap();
        assert_eq!(fast, slow); // bit-exact, not ≤ε
    }

    #[test]
    fn unroll_factors_are_bit_exact() {
        let p = parse(
            "stencil u { grid A[9][11] : f32; iterations 2;
             A[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]); }",
        )
        .unwrap();
        let base = CompiledProgram::compile(&p).unwrap();
        let mut expect = GridState::new(&p, ramp);
        base.run(&mut expect, p.iterations).unwrap();
        for u in [2usize, 3, 4, 8, 64] {
            let cp = CompiledProgram::compile(&p).unwrap().with_unroll(u);
            assert_eq!(cp.unroll(), u);
            let mut got = GridState::new(&p, ramp);
            cp.run(&mut got, p.iterations).unwrap();
            assert_eq!(got, expect, "unroll {u} diverged");
        }
        assert_eq!(base.with_unroll(0).unroll(), 1);
    }

    #[test]
    fn partial_domain_matches_interpreter() {
        let p = parse(
            "stencil pd { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[i][j] + 0.5 * A[i-1][j]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        let domain = Rect::new(Point::new2(2, 1), Point::new2(6, 5)).unwrap();
        let mut fast = GridState::new(&p, ramp);
        cp.apply_statement(&mut fast, 0, &domain).unwrap();
        let mut slow = GridState::new(&p, ramp);
        interp.apply_statement(&mut slow, 0, &domain).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn reused_scratch_is_bit_exact_for_statements_and_fused_groups() {
        let p = parse(
            "stencil fs { grid A[9][7] : f32; grid B[9][7] : f32; iterations 1;
             A[i][j] = 0.5 * (A[i-1][j] + B[i][j+1]);
             B[i][j] = B[i][j] - 0.25 * A[i][j-1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let group: Vec<usize> = (0..p.updates.len()).collect();
        let domain = cp
            .statement_domain(0)
            .intersect(&cp.statement_domain(1))
            .unwrap();
        let mut expect = GridState::new(&p, ramp);
        cp.apply_fused(&mut expect, &group, &domain).unwrap();
        cp.apply_statement(&mut expect, 0, &domain).unwrap();

        // One scratch reused across every call — including a wider fused
        // group after a single-statement call resized the buffer pool.
        let mut scratch = FusedScratch::new();
        let mut got = GridState::new(&p, ramp);
        cp.apply_fused_with(&mut got, &group, &domain, &mut scratch)
            .unwrap();
        cp.apply_statement_with(&mut got, 0, &domain, &mut scratch)
            .unwrap();
        assert_eq!(got, expect);

        // Third round trip on the same scratch stays bit-exact (stale
        // buffer contents must never leak into results).
        cp.apply_fused_with(&mut expect, &group, &domain, &mut scratch)
            .unwrap();
        let mut fresh = got.clone();
        cp.apply_fused(&mut fresh, &group, &domain).unwrap();
        assert_eq!(expect, fresh);
    }

    #[test]
    fn views_reject_mismatched_extents() {
        let p = parse("stencil v { grid A[8] : f32; iterations 1; A[i] = A[i]; }").unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let shrunk = p.with_extent(stencilcl_grid::Extent::new1(4));
        let state = GridState::uniform(&shrunk, 0.0);
        assert!(cp.views(&state).is_err());
        assert!(cp.run(&mut GridState::uniform(&shrunk, 0.0), 1).is_err());
    }

    #[test]
    fn eval_idx_matches_point_eval() {
        let p = parse(
            "stencil e { grid A[5][6] : f32; iterations 1;
             A[i][j] = A[i-1][j] * 2.0 + A[i][j+1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let interp = Interpreter::new(&p);
        let state = GridState::new(&p, ramp);
        let views = cp.views(&state).unwrap();
        let mut stack = Vec::new();
        let at = Point::new2(2, 3);
        let idx = cp.extent().linearize(&at).unwrap();
        let got = cp.eval_idx(0, &views, idx, &mut stack);
        let want = interp.eval(&p.updates[0].rhs, &state, &at).unwrap();
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn lane_widths_are_bit_exact() {
        let p = parse(
            "stencil l { grid A[9][23] : f32; param w = 0.3; iterations 3;
             A[i][j] = max(min(A[i-1][j], A[i+1][j]), abs(A[i][j-1] - A[i][j+1]))
                       + w * sqrt(abs(A[i][j])) - (-A[i][j]); }",
        )
        .unwrap();
        let mut expect = GridState::new(&p, ramp);
        Interpreter::new(&p).run(&mut expect, p.iterations).unwrap();
        for lanes in [1usize, 2, 3, 4, 5, 8, 16] {
            let cp = CompiledProgram::compile(&p).unwrap().with_lanes(lanes);
            assert_eq!(cp.lanes(), lanes.min(LANE_WIDTH));
            let mut got = GridState::new(&p, ramp);
            cp.run(&mut got, p.iterations).unwrap();
            assert_eq!(got, expect, "lanes {lanes} diverged from the interpreter");
        }
    }

    #[test]
    fn lane_width_exceeding_the_row_falls_back_to_scalar() {
        // 3-cell rows (and a 1-cell-row grid) never fill an 8-lane chunk:
        // the whole sweep must go through the scalar tail, bit-exact.
        for src in [
            "stencil t { grid A[6][3] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i][j-1] + A[i][j+1]); }",
            "stencil o { grid A[6][1] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i-1][j] + A[i+1][j]); }",
        ] {
            let p = parse(src).unwrap();
            let cp = CompiledProgram::compile(&p).unwrap();
            let mut fast = GridState::new(&p, ramp);
            cp.run(&mut fast, p.iterations).unwrap();
            let mut slow = GridState::new(&p, ramp);
            Interpreter::new(&p).run(&mut slow, p.iterations).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn independent_statements_fuse_into_one_group() {
        let p = parse(
            "stencil f { grid A[8][12] : f32; grid B[8][12] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i][j-1] + B[i][j+1]);
             B[i][j] = 0.5 * (B[i][j-1] + A[i][j+1]); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        // B's statement reads A, which the first statement writes — fusing
        // would hide A's update from B, so the statements stay sequential.
        assert_eq!(cp.fused_groups(), &[vec![0], vec![1]]);
        let p2 = parse(
            "stencil g { grid A[8][12] : f32; grid B[8][12] : f32;
             grid C[8][12] : f32 read_only; iterations 2;
             A[i][j] = 0.5 * (C[i][j-1] + C[i][j+1]);
             B[i][j] = 0.25 * (C[i][j-1] - C[i][j+1]); }",
        )
        .unwrap();
        let cp2 = CompiledProgram::compile(&p2).unwrap();
        // Both read only C and share the same statement domain: one pass.
        assert_eq!(cp2.fused_groups(), &[vec![0, 1]]);
        let mut fast = GridState::new(&p2, ramp);
        cp2.run(&mut fast, p2.iterations).unwrap();
        let mut slow = GridState::new(&p2, ramp);
        Interpreter::new(&p2).run(&mut slow, p2.iterations).unwrap();
        assert_eq!(fast, slow, "fused pass diverged from sequential oracle");
    }

    #[test]
    fn fusion_requires_matching_domains_and_distinct_targets() {
        // Same inputs but different halos → different statement domains →
        // no fusion.
        let p = parse(
            "stencil h { grid A[8][12] : f32; grid B[8][12] : f32;
             grid C[8][12] : f32 read_only; iterations 1;
             A[i][j] = C[i][j-1] + C[i][j+1];
             B[i][j] = C[i-2][j] + C[i+2][j]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        assert_eq!(cp.fused_groups(), &[vec![0], vec![1]]);
        // Two writes to the same grid never fuse.
        let p2 = parse(
            "stencil w { grid A[8] : f32; grid C[8] : f32 read_only; iterations 1;
             A[i] = C[i-1];
             A[i] = C[i+1]; }",
        )
        .unwrap();
        let cp2 = CompiledProgram::compile(&p2).unwrap();
        assert_eq!(cp2.fused_groups(), &[vec![0], vec![1]]);
    }

    #[test]
    fn clip_boundary_offsets_evaluate_checked_at_the_origin() {
        // A minimal extent whose statement domain touches row 0 / column 0:
        // the j-offset reaches column 0 of row 0 (linear index 0) and the
        // delta arithmetic must stay signed the whole way down.
        let p = parse(
            "stencil min { grid A[1][3] : f32; iterations 2;
             A[i][j] = 0.5 * (A[i][j-1] + A[i][j+1]); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let (lo, hi) = cp.kernel(0).delta_bounds();
        assert_eq!((lo, hi), (-1, 1));
        let mut fast = GridState::new(&p, ramp);
        cp.run(&mut fast, p.iterations).unwrap();
        let mut slow = GridState::new(&p, ramp);
        Interpreter::new(&p).run(&mut slow, p.iterations).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn eval_row_into_rejects_rows_that_reach_outside_the_grid() {
        let p = parse(
            "stencil n { grid A[4][6] : f32; iterations 1;
             A[i][j] = A[i-1][j] + A[i][j-1]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        let state = GridState::new(&p, ramp);
        let views = cp.views(&state).unwrap();
        let mut scratch = EvalScratch::default();
        let mut values = Vec::new();
        // base 0 with delta -6 (row above) would wrap `0 + -6` to a huge
        // usize without the signed check.
        let err = cp
            .eval_row_into(0, &views, 0, 6, &mut scratch, &mut values)
            .unwrap_err();
        assert!(err.to_string().contains("outside the grid"), "{err}");
        assert!(values.is_empty());
        // A row running past the last cell fails too.
        assert!(cp
            .eval_row_into(0, &views, 20, 6, &mut scratch, &mut values)
            .is_err());
        // Wrong view count is rejected before any indexing.
        assert!(cp
            .eval_row_into(0, &views[..0], 7, 5, &mut scratch, &mut values)
            .is_err());
        // The same row, based one full row in (all accesses in bounds),
        // matches eval_idx cell for cell.
        cp.eval_row_into(0, &views, 7, 5, &mut scratch, &mut values)
            .unwrap();
        let mut stack = Vec::new();
        for (k, v) in values.iter().enumerate() {
            let want = cp.eval_idx(0, &views, 7 + k, &mut stack);
            assert_eq!(v.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn zero_area_clip_is_a_no_op() {
        let p = parse(
            "stencil z { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[i-1][j] + A[i+1][j]; }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        // A domain strictly inside the halo band: intersection with the
        // statement domain is empty.
        let domain = Rect::new(Point::new2(0, 0), Point::new2(0, 7)).unwrap();
        let before = GridState::new(&p, ramp);
        let mut state = GridState::new(&p, ramp);
        cp.apply_statement(&mut state, 0, &domain).unwrap();
        assert_eq!(state, before);
    }

    #[test]
    fn stack_need_counts_deepest_nesting() {
        let p = parse(
            "stencil s { grid A[6] : f32; iterations 1;
             A[i] = A[i] + (A[i-1] + (A[i+1] + A[i])); }",
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p).unwrap();
        assert_eq!(cp.kernel(0).stack_need(), 4);
        assert_eq!(cp.statement_count(), 1);
    }
}
