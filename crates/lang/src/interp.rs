use std::collections::BTreeMap;

use stencilcl_grid::{Grid, Point, Rect};

use crate::ast::{BinOp, Expr, Func, Program, UnaryOp};
use crate::LangError;

/// The values of all of a program's grids at some point in time — the
/// functional analogue of the accelerator's global memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GridState {
    grids: BTreeMap<String, Grid<f64>>,
}

impl GridState {
    /// Creates a state by evaluating `init(grid_name, point)` everywhere.
    pub fn new(program: &Program, mut init: impl FnMut(&str, &Point) -> f64) -> Self {
        let grids = program
            .grids
            .iter()
            .map(|g| {
                (
                    g.name.clone(),
                    Grid::from_fn(g.extent, |p| init(&g.name, p)),
                )
            })
            .collect();
        GridState { grids }
    }

    /// Creates a state with every element of every grid set to `value`.
    /// Fills whole rows at a time — this sits on the per-task window
    /// allocation path of the tiled executors, where the per-point closure
    /// of [`GridState::new`] costs more than the copy it precedes.
    pub fn uniform(program: &Program, value: f64) -> Self {
        let grids = program
            .grids
            .iter()
            .map(|g| (g.name.clone(), Grid::filled(g.extent, value)))
            .collect();
        GridState { grids }
    }

    /// Reassembles a state from already-materialized grids (checkpoint
    /// restore).
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the grid set does not match the
    /// program's declarations (missing/extra names or wrong extents).
    pub fn from_grids(
        program: &Program,
        grids: std::collections::BTreeMap<String, Grid<f64>>,
    ) -> Result<Self, LangError> {
        if grids.len() != program.grids.len() {
            return Err(LangError::eval(format!(
                "grid set holds {} grids, program declares {}",
                grids.len(),
                program.grids.len()
            )));
        }
        for decl in &program.grids {
            match grids.get(&decl.name) {
                None => {
                    return Err(LangError::eval(format!(
                        "grid set is missing declared grid `{}`",
                        decl.name
                    )))
                }
                Some(g) if g.extent() != decl.extent => {
                    return Err(LangError::eval(format!(
                        "grid `{}` has extent {:?}, program declares {:?}",
                        decl.name,
                        g.extent(),
                        decl.extent
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(GridState { grids })
    }

    /// Borrow of a grid by name.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the grid does not exist.
    pub fn grid(&self, name: &str) -> Result<&Grid<f64>, LangError> {
        self.grids
            .get(name)
            .ok_or_else(|| LangError::eval(format!("no grid named `{name}`")))
    }

    /// Mutable borrow of a grid by name.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the grid does not exist.
    pub fn grid_mut(&mut self, name: &str) -> Result<&mut Grid<f64>, LangError> {
        self.grids
            .get_mut(name)
            .ok_or_else(|| LangError::eval(format!("no grid named `{name}`")))
    }

    /// Names of all grids, sorted.
    pub fn grid_names(&self) -> impl Iterator<Item = &str> {
        self.grids.keys().map(String::as_str)
    }

    /// Maximum absolute element difference across all grids.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the two states hold different grids
    /// or grid shapes.
    pub fn max_abs_diff(&self, other: &GridState) -> Result<f64, LangError> {
        if self.grids.len() != other.grids.len() {
            return Err(LangError::eval("states hold different numbers of grids"));
        }
        let mut worst: f64 = 0.0;
        for (name, grid) in &self.grids {
            let theirs = other.grid(name)?;
            worst = worst.max(grid.max_abs_diff(theirs)?);
        }
        Ok(worst)
    }

    /// FNV-1a-64 fingerprint of the whole state: every grid's name bytes
    /// followed by its `f64` bit patterns, in sorted name order. Process-
    /// and mode-portable, so the CLI, the job service, and library callers
    /// can compare final states for bit-exactness by exchanging one `u64`
    /// instead of whole grids.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (name, grid) in &self.grids {
            for byte in name.as_bytes() {
                mix(*byte);
            }
            for v in grid.as_slice() {
                for byte in v.to_bits().to_le_bytes() {
                    mix(byte);
                }
            }
        }
        hash
    }
}

/// Evaluates stencil programs over [`GridState`]s.
///
/// The interpreter defines the semantics every accelerator design must
/// reproduce: per iteration, statements run in program order; each statement
/// reads the state left by the previous statement and commits all its writes
/// atomically (Jacobi-style double buffering per statement); a cell is
/// updated only when every access of the statement stays in bounds, so a
/// fixed boundary ring of the statement's halo width is left untouched.
///
/// # Example
///
/// ```
/// use stencilcl_lang::{parse, GridState, Interpreter};
///
/// let p = parse(
///     "stencil avg { grid A[8] : f32; iterations 3;
///      A[i] = 0.5 * (A[i-1] + A[i+1]); }",
/// )?;
/// let interp = Interpreter::new(&p);
/// let mut s = GridState::new(&p, |_, pt| pt.coord(0) as f64);
/// interp.run(&mut s, p.iterations)?;
/// // A linear ramp is a fixed point of the averaging stencil.
/// assert_eq!(*s.grid("A")?.get(&stencilcl_grid::Point::new1(3))?, 3.0);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    params: BTreeMap<&'p str, f64>,
    domains: Vec<Rect>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` fails [`check`](crate::check); construct programs
    /// through [`parse`](crate::parse) or validate them first.
    pub fn new(program: &'p Program) -> Self {
        let features = crate::StencilFeatures::extract(program)
            .expect("Interpreter::new requires a checked program");
        let full = Rect::from_extent(&program.extent());
        let domains = features
            .statements
            .iter()
            .map(|s| {
                let (mut lo, mut hi) = s.growth.amounts(1);
                for v in lo.iter_mut().chain(hi.iter_mut()) {
                    *v = -*v;
                }
                full.expand(&lo, &hi)
            })
            .collect();
        let params = program
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.value))
            .collect();
        Interpreter {
            program,
            params,
            domains,
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The domain statement `si` may update: the grid shrunk by the
    /// statement's halo so every access stays in bounds.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn statement_domain(&self, si: usize) -> Rect {
        self.domains[si]
    }

    /// Applies statement `si` to every in-domain point, with snapshot
    /// semantics. `domain` is clipped to the statement's updatable interior.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    ///
    /// # Panics
    ///
    /// Panics if `si` is out of range.
    pub fn apply_statement(
        &self,
        state: &mut GridState,
        si: usize,
        domain: &Rect,
    ) -> Result<(), LangError> {
        let stmt = &self.program.updates[si];
        let clipped = domain.intersect(&self.statement_domain(si))?;
        if clipped.is_empty() {
            return Ok(());
        }
        let mut values = Vec::with_capacity(clipped.volume() as usize);
        for p in clipped.iter() {
            values.push(self.eval(&stmt.rhs, state, &p)?);
        }
        let target = state.grid_mut(&stmt.target)?;
        for (p, v) in clipped.iter().zip(values) {
            target.set(&p, v)?;
        }
        Ok(())
    }

    /// Runs one full stencil iteration (all statements in order) over
    /// `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn step(&self, state: &mut GridState, domain: &Rect) -> Result<(), LangError> {
        for si in 0..self.program.updates.len() {
            self.apply_statement(state, si, domain)?;
        }
        Ok(())
    }

    /// Runs `iterations` full-grid stencil iterations — the naive reference
    /// execution with a global synchronization after every iteration.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] when the state lacks a referenced grid.
    pub fn run(&self, state: &mut GridState, iterations: u64) -> Result<(), LangError> {
        let full = Rect::from_extent(&self.program.extent());
        for _ in 0..iterations {
            self.step(state, &full)?;
        }
        Ok(())
    }

    /// Evaluates `expr` at point `at` against the current state.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Eval`] for missing grids or out-of-bounds
    /// accesses (which indicate a caller domain bug).
    pub fn eval(&self, expr: &Expr, state: &GridState, at: &Point) -> Result<f64, LangError> {
        match expr {
            Expr::Number(v) => Ok(*v),
            Expr::Param(name) => self
                .params
                .get(name.as_str())
                .copied()
                .ok_or_else(|| LangError::eval(format!("unknown parameter `{name}`"))),
            Expr::Access { grid, offset } => {
                let p = at.checked_add(offset)?;
                Ok(*state.grid(grid)?.get(&p)?)
            }
            Expr::Unary(UnaryOp::Neg, e) => Ok(-self.eval(e, state, at)?),
            Expr::Binary(op, a, b) => {
                let (x, y) = (self.eval(a, state, at)?, self.eval(b, state, at)?);
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                })
            }
            Expr::Call(func, args) => {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|a| self.eval(a, state, at))
                    .collect::<Result<_, _>>()?;
                Ok(match func {
                    Func::Min => vals[0].min(vals[1]),
                    Func::Max => vals[0].max(vals[1]),
                    Func::Abs => vals[0].abs(),
                    Func::Sqrt => vals[0].sqrt(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use stencilcl_grid::Extent;

    fn jacobi_1d_src(n: usize, h: u64) -> String {
        format!(
            "stencil j1 {{ grid A[{n}] : f32; iterations {h};
             A[i] = 0.25 * A[i-1] + 0.5 * A[i] + 0.25 * A[i+1]; }}"
        )
    }

    #[test]
    fn boundary_cells_fixed() {
        let p = parse(&jacobi_1d_src(8, 1)).unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::new(&p, |_, pt| if pt.coord(0) == 0 { 100.0 } else { 0.0 });
        interp.run(&mut s, 5).unwrap();
        // Cell 0 is on the boundary and must keep its value.
        assert_eq!(*s.grid("A").unwrap().get(&Point::new1(0)).unwrap(), 100.0);
    }

    #[test]
    fn diffusion_conserves_interior_smoothness() {
        let p = parse(&jacobi_1d_src(16, 4)).unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::new(&p, |_, pt| pt.coord(0) as f64);
        interp.run(&mut s, 4).unwrap();
        // A linear ramp is a fixed point.
        for i in 0..16 {
            assert_eq!(
                *s.grid("A").unwrap().get(&Point::new1(i)).unwrap(),
                i as f64
            );
        }
    }

    #[test]
    fn statement_domain_shrinks_by_halo() {
        let p = parse(
            "stencil a { grid A[10][10] : f32; iterations 1;
             A[i][j] = A[i-2][j] + A[i][j+1]; }",
        )
        .unwrap();
        let interp = Interpreter::new(&p);
        let d = interp.statement_domain(0);
        assert_eq!(d.lo(), Point::new2(2, 0));
        assert_eq!(d.hi(), Point::new2(10, 9));
    }

    #[test]
    fn statements_chain_within_iteration() {
        // B picks up A's already-updated value within the same iteration.
        let p = parse(
            "stencil c { grid A[4] : f32; grid B[4] : f32; iterations 1;
             A[i] = A[i] + 1.0;
             B[i] = A[i]; }",
        )
        .unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::uniform(&p, 0.0);
        interp.run(&mut s, 1).unwrap();
        assert_eq!(*s.grid("B").unwrap().get(&Point::new1(2)).unwrap(), 1.0);
    }

    #[test]
    fn snapshot_semantics_within_statement() {
        // A[i] = A[i-1] must read the OLD left neighbor, not the new one.
        let p = parse(
            "stencil s { grid A[5] : f32; iterations 1;
             A[i] = A[i-1] + A[i+1]; }",
        )
        .unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::new(&p, |_, pt| pt.coord(0) as f64);
        interp.run(&mut s, 1).unwrap();
        // A[1] = old A[0] + old A[2] = 0 + 2; A[2] = old A[1] + old A[3] = 1 + 3.
        assert_eq!(*s.grid("A").unwrap().get(&Point::new1(1)).unwrap(), 2.0);
        assert_eq!(*s.grid("A").unwrap().get(&Point::new1(2)).unwrap(), 4.0);
    }

    #[test]
    fn partial_domain_updates_only_inside() {
        let p = parse(&jacobi_1d_src(8, 1)).unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::uniform(&p, 1.0);
        s.grid_mut("A").unwrap().set(&Point::new1(4), 9.0).unwrap();
        let domain = Rect::new(Point::new1(0), Point::new1(4)).unwrap();
        interp.step(&mut s, &domain).unwrap();
        // Point 4 was outside the half-open domain; untouched.
        assert_eq!(*s.grid("A").unwrap().get(&Point::new1(4)).unwrap(), 9.0);
        // Point 2 was inside; neighbors were all 1.0, so unchanged value.
        assert_eq!(*s.grid("A").unwrap().get(&Point::new1(2)).unwrap(), 1.0);
        // Point 3 saw the 9.0 neighbor: 0.25*1 + 0.5*1 + 0.25*9.
        assert_eq!(
            *s.grid("A").unwrap().get(&Point::new1(3)).unwrap(),
            0.75 + 0.25 * 9.0
        );
    }

    #[test]
    fn uniform_state_is_fixed_point_of_averaging() {
        let p = parse(&jacobi_1d_src(12, 3)).unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::uniform(&p, 7.5);
        let before = s.clone();
        interp.run(&mut s, 3).unwrap();
        assert_eq!(s.max_abs_diff(&before).unwrap(), 0.0);
    }

    #[test]
    fn missing_grid_is_eval_error() {
        let p = parse(&jacobi_1d_src(8, 1)).unwrap();
        let s = GridState::uniform(&p, 0.0);
        assert!(s.grid("Z").is_err());
    }

    #[test]
    fn state_construction_covers_all_grids() {
        let p = parse(
            "stencil two { grid A[4] : f32; grid B[4] : f32 read_only; iterations 1;
             A[i] = A[i] + B[i]; }",
        )
        .unwrap();
        let s = GridState::new(&p, |name, _| if name == "B" { 2.0 } else { 0.0 });
        assert_eq!(s.grid_names().count(), 2);
        assert_eq!(*s.grid("B").unwrap().get(&Point::new1(0)).unwrap(), 2.0);
        let _ = Extent::new1(4);
    }
}
