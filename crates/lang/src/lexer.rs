use crate::token::{Span, Token, TokenKind};
use crate::LangError;

/// Lexes stencil DSL source text into a token stream (terminated by
/// [`TokenKind::Eof`]).
///
/// Line comments start with `//` and run to end of line.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on any character outside the DSL alphabet.
///
/// # Example
///
/// ```
/// use stencilcl_lang::{tokenize, TokenKind};
///
/// let toks = tokenize("grid A[8] : f32;")?;
/// assert!(matches!(toks[0].kind, TokenKind::Ident(ref s) if s == "grid"));
/// assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |pos: &mut usize, line: &mut u32, col: &mut u32| {
        if chars.get(*pos) == Some(&'\n') {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *pos += 1;
    };

    while pos < chars.len() {
        let c = chars[pos];
        let span = Span { line, col };
        match c {
            c if c.is_whitespace() => {
                advance(&mut pos, &mut line, &mut col);
            }
            '/' if chars.get(pos + 1) == Some(&'/') => {
                while pos < chars.len() && chars[pos] != '\n' {
                    advance(&mut pos, &mut line, &mut col);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while pos < chars.len() && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_')
                {
                    ident.push(chars[pos]);
                    advance(&mut pos, &mut line, &mut col);
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    span,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while pos < chars.len() && chars[pos].is_ascii_digit() {
                    text.push(chars[pos]);
                    advance(&mut pos, &mut line, &mut col);
                }
                if pos < chars.len()
                    && chars[pos] == '.'
                    && chars.get(pos + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    text.push('.');
                    advance(&mut pos, &mut line, &mut col);
                    while pos < chars.len() && chars[pos].is_ascii_digit() {
                        text.push(chars[pos]);
                        advance(&mut pos, &mut line, &mut col);
                    }
                }
                if pos < chars.len() && (chars[pos] == 'e' || chars[pos] == 'E') {
                    is_float = true;
                    text.push('e');
                    advance(&mut pos, &mut line, &mut col);
                    if pos < chars.len() && (chars[pos] == '+' || chars[pos] == '-') {
                        text.push(chars[pos]);
                        advance(&mut pos, &mut line, &mut col);
                    }
                    while pos < chars.len() && chars[pos].is_ascii_digit() {
                        text.push(chars[pos]);
                        advance(&mut pos, &mut line, &mut col);
                    }
                }
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| LangError::Lex { span, found: c })?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| LangError::Lex { span, found: c })?,
                    )
                };
                tokens.push(Token { kind, span });
            }
            _ => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '=' => TokenKind::Equals,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '/' => TokenKind::Slash,
                    ':' => TokenKind::Colon,
                    ';' => TokenKind::Semicolon,
                    ',' => TokenKind::Comma,
                    other => return Err(LangError::Lex { span, found: other }),
                };
                advance(&mut pos, &mut line, &mut col);
                tokens.push(Token { kind, span });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        let k = kinds("grid A [ 8 ] : f32 ;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("grid".into()),
                TokenKind::Ident("A".into()),
                TokenKind::LBracket,
                TokenKind::Int(8),
                TokenKind::RBracket,
                TokenKind::Colon,
                TokenKind::Ident("f32".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_scientific() {
        assert_eq!(kinds("0.25")[0], TokenKind::Float(0.25));
        assert_eq!(kinds("1e-3")[0], TokenKind::Float(1e-3));
        assert_eq!(kinds("2.5E2")[0], TokenKind::Float(250.0));
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
    }

    #[test]
    fn integer_then_field_access_not_float() {
        // "1.x" should not parse the dot as part of the number.
        let e = tokenize("1.x").unwrap_err();
        assert!(matches!(e, LangError::Lex { found: '.', .. }));
    }

    #[test]
    fn skips_comments() {
        let k = kinds("a // comment + * /\nb");
        assert_eq!(k.len(), 3);
        assert_eq!(k[0], TokenKind::Ident("a".into()));
        assert_eq!(k[1], TokenKind::Ident("b".into()));
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(
            tokenize("a $ b").unwrap_err(),
            LangError::Lex { found: '$', .. }
        ));
    }

    #[test]
    fn minus_is_its_own_token() {
        let k = kinds("i-1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("i".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }
}
