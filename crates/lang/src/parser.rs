use stencilcl_grid::{Extent, Point, MAX_DIM};

use crate::ast::{BinOp, ElemType, Expr, Func, GridDecl, ParamDecl, Program, UnaryOp, UpdateStmt};
use crate::check::check;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use crate::LangError;

/// Parses (and [`check`]s) stencil DSL source text into a [`Program`].
///
/// # Errors
///
/// Returns [`LangError::Lex`] / [`LangError::Parse`] for malformed source and
/// [`LangError::Semantic`] when the program violates a semantic rule.
///
/// # Example
///
/// ```
/// use stencilcl_lang::parse;
///
/// let p = parse(
///     "stencil j1 { grid A[16] : f32; iterations 2;
///      A[i] = 0.5 * (A[i-1] + A[i+1]); }",
/// )?;
/// assert_eq!(p.name, "j1");
/// assert_eq!(p.updates.len(), 1);
/// # Ok::<(), stencilcl_lang::LangError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let program = parser.program()?;
    check(&program)?;
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, expected: &str) -> Result<T, LangError> {
        let t = self.peek();
        Err(LangError::Parse {
            span: t.span,
            expected: expected.to_string(),
            found: t.kind.to_string(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LangError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.error(what)
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), LangError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == word => {
                self.bump();
                Ok(())
            }
            _ => self.error(&format!("keyword `{word}`")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.error(what),
        }
    }

    fn integer(&mut self, what: &str) -> Result<u64, LangError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => self.error(what),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        self.expect_keyword("stencil")?;
        let name = self.ident("program name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut grids = Vec::new();
        let mut params = Vec::new();
        let mut iterations: Option<u64> = None;
        let mut updates = Vec::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(word) => match word.as_str() {
                    "grid" => grids.push(self.grid_decl()?),
                    "param" => params.push(self.param_decl()?),
                    "iterations" => {
                        self.bump();
                        iterations = Some(self.integer("iteration count")?);
                        self.expect(&TokenKind::Semicolon, "`;`")?;
                    }
                    _ => updates.push(self.update_stmt()?),
                },
                _ => return self.error("declaration, update statement, or `}`"),
            }
        }
        self.expect(&TokenKind::Eof, "end of input")?;
        let iterations = iterations
            .ok_or_else(|| LangError::semantic("program must declare `iterations N;`"))?;
        Ok(Program {
            name,
            grids,
            params,
            iterations,
            updates,
        })
    }

    fn grid_decl(&mut self) -> Result<GridDecl, LangError> {
        self.expect_keyword("grid")?;
        let name = self.ident("grid name")?;
        let mut lens = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            lens.push(self.integer("dimension length")? as usize);
            self.expect(&TokenKind::RBracket, "`]`")?;
        }
        if lens.is_empty() || lens.len() > MAX_DIM {
            return Err(LangError::semantic(format!(
                "grid `{name}` must have 1..={MAX_DIM} dimensions, got {}",
                lens.len()
            )));
        }
        self.expect(&TokenKind::Colon, "`:`")?;
        let ty = match self.ident("element type (`f32` or `f64`)")?.as_str() {
            "f32" => ElemType::F32,
            "f64" => ElemType::F64,
            other => {
                return Err(LangError::semantic(format!(
                    "unknown element type `{other}` for grid `{name}`"
                )))
            }
        };
        let read_only = if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "read_only") {
            self.bump();
            true
        } else {
            false
        };
        self.expect(&TokenKind::Semicolon, "`;`")?;
        let extent = Extent::new(&lens).map_err(LangError::from)?;
        Ok(GridDecl {
            name,
            extent,
            ty,
            read_only,
        })
    }

    fn param_decl(&mut self) -> Result<ParamDecl, LangError> {
        self.expect_keyword("param")?;
        let name = self.ident("parameter name")?;
        self.expect(&TokenKind::Equals, "`=`")?;
        let negative = if self.peek().kind == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        let value = match self.peek().kind {
            TokenKind::Float(v) => {
                self.bump();
                v
            }
            TokenKind::Int(v) => {
                self.bump();
                v as f64
            }
            _ => return self.error("numeric parameter value"),
        };
        self.expect(&TokenKind::Semicolon, "`;`")?;
        Ok(ParamDecl {
            name,
            value: if negative { -value } else { value },
        })
    }

    fn update_stmt(&mut self) -> Result<UpdateStmt, LangError> {
        let target = self.ident("update target grid")?;
        let mut index_vars = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            index_vars.push(self.ident("iteration variable")?);
            self.expect(&TokenKind::RBracket, "`]`")?;
        }
        if index_vars.is_empty() || index_vars.len() > MAX_DIM {
            return Err(LangError::semantic(format!(
                "update of `{target}` must index 1..={MAX_DIM} dimensions"
            )));
        }
        self.expect(&TokenKind::Equals, "`=`")?;
        let rhs = self.expr(&index_vars)?;
        self.expect(&TokenKind::Semicolon, "`;`")?;
        Ok(UpdateStmt {
            target,
            index_vars,
            rhs,
        })
    }

    fn expr(&mut self, vars: &[String]) -> Result<Expr, LangError> {
        let mut lhs = self.term(vars)?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term(vars)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self, vars: &[String]) -> Result<Expr, LangError> {
        let mut lhs = self.factor(vars)?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor(vars)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self, vars: &[String]) -> Result<Expr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.factor(vars)?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr(vars)?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Number(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Number(v as f64))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek().kind == TokenKind::LBracket {
                    let offset = self.access_offsets(&name, vars)?;
                    Ok(Expr::Access { grid: name, offset })
                } else if self.peek().kind == TokenKind::LParen {
                    let func = Func::by_name(&name).ok_or_else(|| {
                        LangError::semantic(format!(
                            "unknown function `{name}` (supported: min, max, abs, sqrt)"
                        ))
                    })?;
                    self.bump(); // `(`
                    let mut args = vec![self.expr(vars)?];
                    while self.peek().kind == TokenKind::Comma {
                        self.bump();
                        args.push(self.expr(vars)?);
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            _ => self.error("expression"),
        }
    }

    fn access_offsets(&mut self, grid: &str, vars: &[String]) -> Result<Point, LangError> {
        let mut offsets = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            let var = self.ident("iteration variable")?;
            let d = offsets.len();
            match vars.get(d) {
                Some(expected) if *expected == var => {}
                Some(expected) => {
                    return Err(LangError::semantic(format!(
                        "access `{grid}` dimension {d} indexed by `{var}`, expected `{expected}` \
                         (indices must use the statement's iteration variables in order)"
                    )))
                }
                None => {
                    return Err(LangError::semantic(format!(
                        "access `{grid}` has more dimensions than the update target"
                    )))
                }
            }
            let off = match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    self.integer("constant offset")? as i64
                }
                TokenKind::Minus => {
                    self.bump();
                    -(self.integer("constant offset")? as i64)
                }
                _ => 0,
            };
            offsets.push(off);
            self.expect(&TokenKind::RBracket, "`]`")?;
        }
        if offsets.len() != vars.len() {
            return Err(LangError::semantic(format!(
                "access `{grid}` has {} indices but the statement iterates over {} dimensions",
                offsets.len(),
                vars.len()
            )));
        }
        Point::new(&offsets).map_err(LangError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jacobi_1d() {
        let p = parse(
            "stencil j1 { grid A[16] : f32; iterations 4;
             A[i] = 0.33 * (A[i-1] + A[i] + A[i+1]); }",
        )
        .unwrap();
        assert_eq!(p.name, "j1");
        assert_eq!(p.grids.len(), 1);
        assert_eq!(p.iterations, 4);
        let acc = p.updates[0].rhs.accesses();
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[0].1, Point::new1(-1));
    }

    #[test]
    fn parses_params_and_read_only() {
        let p = parse(
            "stencil hs { grid T[8][8] : f32; grid P[8][8] : f32 read_only;
             param cap = 0.5; param amb = -80.0; iterations 1;
             T[i][j] = T[i][j] + cap * (P[i][j] + amb); }",
        )
        .unwrap();
        assert!(p.grid("P").unwrap().read_only);
        assert_eq!(p.param("amb"), Some(-80.0));
        assert_eq!(p.param("cap"), Some(0.5));
    }

    #[test]
    fn precedence_mul_before_add() {
        let p = parse(
            "stencil e { grid A[8] : f32; iterations 1;
             A[i] = 1.0 + 2.0 * 3.0; }",
        )
        .unwrap();
        match &p.updates[0].rhs {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn unary_negation() {
        let p = parse(
            "stencil e { grid A[8] : f32; iterations 1;
             A[i] = -A[i] + 1.0; }",
        )
        .unwrap();
        match &p.updates[0].rhs {
            Expr::Binary(BinOp::Add, lhs, _) => {
                assert!(matches!(**lhs, Expr::Unary(UnaryOp::Neg, _)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_index_var() {
        let err = parse(
            "stencil e { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[j][i]; }",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Semantic { .. }), "{err}");
    }

    #[test]
    fn rejects_non_constant_offsets() {
        // `A[i*2]` is not in the grammar at all.
        let err = parse(
            "stencil e { grid A[8] : f32; iterations 1;
             A[i] = A[i * 2]; }",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_missing_iterations() {
        let err = parse("stencil e { grid A[8] : f32; A[i] = A[i]; }").unwrap_err();
        assert!(err.to_string().contains("iterations"), "{err}");
    }

    #[test]
    fn rejects_dimension_mismatch_in_access() {
        let err = parse(
            "stencil e { grid A[8][8] : f32; iterations 1;
             A[i][j] = A[i]; }",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Semantic { .. }), "{err}");
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse("stencil e { grid A[8] : f32; iterations 1; A[i] = ; }").unwrap_err();
        match err {
            LangError::Parse { span, .. } => assert_eq!(span.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn integer_literals_allowed_in_expressions() {
        let p = parse(
            "stencil e { grid A[8] : f32; iterations 1;
             A[i] = A[i] / 2; }",
        )
        .unwrap();
        match &p.updates[0].rhs {
            Expr::Binary(BinOp::Div, _, rhs) => {
                assert!(matches!(**rhs, Expr::Number(v) if v == 2.0))
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }
}
