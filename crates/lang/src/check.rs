use std::collections::HashSet;

use crate::ast::{Expr, Program};
use crate::LangError;

/// Validates the semantic rules of a stencil [`Program`].
///
/// Rules enforced:
///
/// 1. at least one grid and at least one update statement are declared;
/// 2. grid and parameter names are unique and do not shadow each other;
/// 3. every grid shares one extent and one element type (the framework tiles
///    all arrays identically, as the paper's benchmarks do);
/// 4. `iterations` is at least 1;
/// 5. update targets are declared, writable (not `read_only`) grids and are
///    indexed with exactly as many iteration variables as the grid has
///    dimensions;
/// 6. every grid access references a declared grid of matching
///    dimensionality, and every parameter reference is declared.
///
/// [`parse`](crate::parse) runs this automatically; it is public for
/// programs constructed directly as ASTs.
///
/// # Errors
///
/// Returns [`LangError::Semantic`] describing the first violated rule.
pub fn check(program: &Program) -> Result<(), LangError> {
    if program.grids.is_empty() {
        return Err(LangError::semantic("program declares no grids"));
    }
    if program.updates.is_empty() {
        return Err(LangError::semantic("program declares no update statements"));
    }
    if program.iterations == 0 {
        return Err(LangError::semantic("`iterations` must be at least 1"));
    }

    let mut names = HashSet::new();
    for g in &program.grids {
        if !names.insert(g.name.as_str()) {
            return Err(LangError::semantic(format!(
                "duplicate declaration of `{}`",
                g.name
            )));
        }
    }
    for p in &program.params {
        if !names.insert(p.name.as_str()) {
            return Err(LangError::semantic(format!(
                "duplicate declaration of `{}`",
                p.name
            )));
        }
    }

    let first = &program.grids[0];
    for g in &program.grids[1..] {
        if g.extent != first.extent {
            return Err(LangError::semantic(format!(
                "grid `{}` has extent {} but `{}` has {}; all grids must share one extent",
                g.name, g.extent, first.name, first.extent
            )));
        }
        if g.ty != first.ty {
            return Err(LangError::semantic(format!(
                "grid `{}` has element type {} but `{}` has {}",
                g.name, g.ty, first.name, first.ty
            )));
        }
    }

    for (si, stmt) in program.updates.iter().enumerate() {
        let target = program.grid(&stmt.target).ok_or_else(|| {
            LangError::semantic(format!(
                "statement {si}: unknown update target `{}`",
                stmt.target
            ))
        })?;
        if target.read_only {
            return Err(LangError::semantic(format!(
                "statement {si}: `{}` is read_only and cannot be updated",
                stmt.target
            )));
        }
        if stmt.index_vars.len() != target.extent.dim() {
            return Err(LangError::semantic(format!(
                "statement {si}: `{}` is {}-dimensional but is indexed by {} variables",
                stmt.target,
                target.extent.dim(),
                stmt.index_vars.len()
            )));
        }
        let mut seen_vars = HashSet::new();
        for v in &stmt.index_vars {
            if !seen_vars.insert(v.as_str()) {
                return Err(LangError::semantic(format!(
                    "statement {si}: iteration variable `{v}` used twice"
                )));
            }
        }
        check_expr(program, si, &stmt.rhs)?;
    }
    Ok(())
}

fn check_expr(program: &Program, si: usize, expr: &Expr) -> Result<(), LangError> {
    match expr {
        Expr::Number(v) => {
            if !v.is_finite() {
                return Err(LangError::semantic(format!(
                    "statement {si}: non-finite literal {v}"
                )));
            }
            Ok(())
        }
        Expr::Param(name) => {
            if program.param(name).is_none() {
                return Err(LangError::semantic(format!(
                    "statement {si}: unknown parameter `{name}`"
                )));
            }
            Ok(())
        }
        Expr::Access { grid, offset } => {
            let decl = program.grid(grid).ok_or_else(|| {
                LangError::semantic(format!("statement {si}: unknown grid `{grid}`"))
            })?;
            if decl.extent.dim() != offset.dim() {
                return Err(LangError::semantic(format!(
                    "statement {si}: grid `{grid}` is {}-dimensional but accessed with {} indices",
                    decl.extent.dim(),
                    offset.dim()
                )));
            }
            Ok(())
        }
        Expr::Unary(_, e) => check_expr(program, si, e),
        Expr::Binary(_, a, b) => {
            check_expr(program, si, a)?;
            check_expr(program, si, b)
        }
        Expr::Call(func, args) => {
            if args.len() != func.arity() {
                return Err(LangError::semantic(format!(
                    "statement {si}: `{}` takes {} argument(s), got {}",
                    func.name(),
                    func.arity(),
                    args.len()
                )));
            }
            for a in args {
                check_expr(program, si, a)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, ElemType, GridDecl, ParamDecl, UpdateStmt};
    use stencilcl_grid::{Extent, Point};

    fn minimal() -> Program {
        Program {
            name: "t".into(),
            grids: vec![GridDecl {
                name: "A".into(),
                extent: Extent::new1(8),
                ty: ElemType::F32,
                read_only: false,
            }],
            params: vec![],
            iterations: 1,
            updates: vec![UpdateStmt {
                target: "A".into(),
                index_vars: vec!["i".into()],
                rhs: Expr::Access {
                    grid: "A".into(),
                    offset: Point::new1(0),
                },
            }],
        }
    }

    #[test]
    fn minimal_program_checks() {
        assert!(check(&minimal()).is_ok());
    }

    #[test]
    fn rejects_empty_programs() {
        let mut p = minimal();
        p.updates.clear();
        assert!(check(&p).is_err());
        let mut p = minimal();
        p.grids.clear();
        assert!(check(&p).is_err());
        let mut p = minimal();
        p.iterations = 0;
        assert!(check(&p).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut p = minimal();
        p.params.push(ParamDecl {
            name: "A".into(),
            value: 1.0,
        });
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_mismatched_extents() {
        let mut p = minimal();
        p.grids.push(GridDecl {
            name: "B".into(),
            extent: Extent::new1(9),
            ty: ElemType::F32,
            read_only: true,
        });
        assert!(check(&p).is_err());
    }

    #[test]
    fn rejects_mismatched_elem_types() {
        let mut p = minimal();
        p.grids.push(GridDecl {
            name: "B".into(),
            extent: Extent::new1(8),
            ty: ElemType::F64,
            read_only: true,
        });
        assert!(check(&p).is_err());
    }

    #[test]
    fn rejects_read_only_target() {
        let mut p = minimal();
        p.grids[0].read_only = true;
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("read_only"), "{err}");
    }

    #[test]
    fn rejects_unknown_param_and_grid() {
        let mut p = minimal();
        p.updates[0].rhs = Expr::Param("nope".into());
        assert!(check(&p).is_err());
        let mut p = minimal();
        p.updates[0].rhs = Expr::Access {
            grid: "B".into(),
            offset: Point::new1(0),
        };
        assert!(check(&p).is_err());
    }

    #[test]
    fn rejects_duplicate_index_vars() {
        let mut p = minimal();
        p.grids[0].extent = Extent::new2(8, 8);
        p.updates[0].index_vars = vec!["i".into(), "i".into()];
        p.updates[0].rhs = Expr::Access {
            grid: "A".into(),
            offset: Point::new2(0, 0),
        };
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("used twice"), "{err}");
    }

    #[test]
    fn rejects_non_finite_literals() {
        let mut p = minimal();
        p.updates[0].rhs = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Number(f64::NAN)),
            Box::new(Expr::Number(1.0)),
        );
        assert!(check(&p).is_err());
    }
}
