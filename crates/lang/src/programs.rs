//! The seven stencil benchmarks of the paper's Table 2, written in the DSL.
//!
//! | Benchmark  | Source    | Input size             | Iterations |
//! |------------|-----------|------------------------|------------|
//! | Jacobi-1D  | Polybench | 131072                 | 1024       |
//! | Jacobi-2D  | Polybench | 2048 × 2048            | 1024       |
//! | Jacobi-3D  | Parboil   | 1024 × 1024 × 1024     | 1024       |
//! | HotSpot-2D | Rodinia   | 4096 × 4096            | 1000       |
//! | HotSpot-3D | Rodinia   | 4096 × 4096 × 128      | 1000       |
//! | FDTD-2D    | Polybench | 2048 × 2048            | 500        |
//! | FDTD-3D    | Polybench | 2048 × 2048 × 2048     | 500        |
//!
//! Each constructor returns the paper-scale program; use
//! [`Program::with_extent`] and [`Program::with_iterations`] to shrink them
//! for functional testing (the update expressions are size-independent).

use crate::{parse, Program};

/// DSL source of Jacobi-1D (Polybench): 3-point average.
pub fn jacobi_1d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil jacobi_1d {{
            grid A[{n}] : f32;
            iterations {iterations};
            A[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
        }}"
    )
}

/// Jacobi-1D at the paper's input size (131072 elements, 1024 iterations).
pub fn jacobi_1d() -> Program {
    parse(&jacobi_1d_source(131072, 1024)).expect("builtin benchmark parses")
}

/// DSL source of Jacobi-2D (Polybench): 5-point star.
pub fn jacobi_2d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil jacobi_2d {{
            grid A[{n}][{n}] : f32;
            iterations {iterations};
            A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
        }}"
    )
}

/// Jacobi-2D at the paper's input size (2048², 1024 iterations).
pub fn jacobi_2d() -> Program {
    parse(&jacobi_2d_source(2048, 1024)).expect("builtin benchmark parses")
}

/// DSL source of Jacobi-3D (Parboil): 7-point star.
pub fn jacobi_3d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil jacobi_3d {{
            grid A[{n}][{n}][{n}] : f32;
            param c0 = 0.4;
            param c1 = 0.1;
            iterations {iterations};
            A[i][j][k] = c0 * A[i][j][k]
                       + c1 * (A[i-1][j][k] + A[i+1][j][k]
                             + A[i][j-1][k] + A[i][j+1][k]
                             + A[i][j][k-1] + A[i][j][k+1]);
        }}"
    )
}

/// Jacobi-3D at the paper's input size (1024³, 1024 iterations).
pub fn jacobi_3d() -> Program {
    parse(&jacobi_3d_source(1024, 1024)).expect("builtin benchmark parses")
}

/// DSL source of HotSpot-2D (Rodinia): thermal simulation with a read-only
/// power map.
pub fn hotspot_2d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil hotspot_2d {{
            grid temp[{n}][{n}] : f32;
            grid power[{n}][{n}] : f32 read_only;
            param cap = 0.5;
            param rx = 0.1;
            param ry = 0.1;
            param rz = 0.0625;
            param amb = 80.0;
            iterations {iterations};
            temp[i][j] = temp[i][j] + cap * (power[i][j]
                       + (temp[i+1][j] + temp[i-1][j] - 2.0 * temp[i][j]) * ry
                       + (temp[i][j+1] + temp[i][j-1] - 2.0 * temp[i][j]) * rx
                       + (amb - temp[i][j]) * rz);
        }}"
    )
}

/// HotSpot-2D at the paper's input size (4096², 1000 iterations).
pub fn hotspot_2d() -> Program {
    parse(&hotspot_2d_source(4096, 1000)).expect("builtin benchmark parses")
}

/// DSL source of HotSpot-3D (Rodinia): `nx × ny × nz` thermal simulation.
pub fn hotspot_3d_source(nx: usize, ny: usize, nz: usize, iterations: u64) -> String {
    format!(
        "stencil hotspot_3d {{
            grid temp[{nx}][{ny}][{nz}] : f32;
            grid power[{nx}][{ny}][{nz}] : f32 read_only;
            param cap = 0.5;
            param rx = 0.1;
            param ry = 0.1;
            param rz = 0.05;
            param rc = 0.0625;
            param amb = 80.0;
            iterations {iterations};
            temp[i][j][k] = temp[i][j][k] + cap * (power[i][j][k]
                          + (temp[i+1][j][k] + temp[i-1][j][k] - 2.0 * temp[i][j][k]) * rx
                          + (temp[i][j+1][k] + temp[i][j-1][k] - 2.0 * temp[i][j][k]) * ry
                          + (temp[i][j][k+1] + temp[i][j][k-1] - 2.0 * temp[i][j][k]) * rz
                          + (amb - temp[i][j][k]) * rc);
        }}"
    )
}

/// HotSpot-3D at the paper's input size (4096 × 4096 × 128, 1000 iterations).
pub fn hotspot_3d() -> Program {
    parse(&hotspot_3d_source(4096, 4096, 128, 1000)).expect("builtin benchmark parses")
}

/// DSL source of FDTD-2D (Polybench): electric fields `ex`/`ey` updated from
/// the magnetic field `hz`, then `hz` from the fresh fields — statements
/// chain within one iteration.
pub fn fdtd_2d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil fdtd_2d {{
            grid ey[{n}][{n}] : f32;
            grid ex[{n}][{n}] : f32;
            grid hz[{n}][{n}] : f32;
            iterations {iterations};
            ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
            ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
            hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
        }}"
    )
}

/// FDTD-2D at the paper's input size (2048², 500 iterations).
pub fn fdtd_2d() -> Program {
    parse(&fdtd_2d_source(2048, 500)).expect("builtin benchmark parses")
}

/// DSL source of FDTD-3D (Polybench): the natural 3-D extension with one
/// electric and one magnetic field, preserving FDTD-2D's chained
/// low-side/high-side access structure.
pub fn fdtd_3d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil fdtd_3d {{
            grid e[{n}][{n}][{n}] : f32;
            grid h[{n}][{n}][{n}] : f32;
            iterations {iterations};
            e[i][j][k] = e[i][j][k] - 0.5 * (3.0 * h[i][j][k]
                       - h[i-1][j][k] - h[i][j-1][k] - h[i][j][k-1]);
            h[i][j][k] = h[i][j][k] - 0.7 * (e[i+1][j][k] + e[i][j+1][k]
                       + e[i][j][k+1] - 3.0 * e[i][j][k]);
        }}"
    )
}

/// FDTD-3D at the paper's input size (2048³, 500 iterations).
pub fn fdtd_3d() -> Program {
    parse(&fdtd_3d_source(2048, 500)).expect("builtin benchmark parses")
}

/// DSL source of a Chambolle-style total-variation denoising step — the
/// algorithm of the paper's application references [2, 20] (Akin et al.,
/// DATE'11; Beretta et al., TECS'16), which Nacci et al. also used to
/// evaluate the baseline architecture. The dual fields `px`/`py` are
/// projected with an anisotropic norm, exercising the `abs` intrinsic,
/// division, a read-only input image, and three chained statements.
pub fn chambolle_2d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil chambolle_2d {{
            grid dv[{n}][{n}] : f32;
            grid px[{n}][{n}] : f32;
            grid py[{n}][{n}] : f32;
            grid g[{n}][{n}] : f32 read_only;
            param tau = 0.25;
            param invlam = 0.1;
            iterations {iterations};
            dv[i][j] = px[i][j] - px[i][j-1] + py[i][j] - py[i-1][j] - invlam * g[i][j];
            px[i][j] = (px[i][j] + tau * (dv[i][j+1] - dv[i][j]))
                     / (1.0 + tau * abs(dv[i][j+1] - dv[i][j]));
            py[i][j] = (py[i][j] + tau * (dv[i+1][j] - dv[i][j]))
                     / (1.0 + tau * abs(dv[i+1][j] - dv[i][j]));
        }}"
    )
}

/// Chambolle-style TV denoising at a representative scale (512 x 512, 100
/// iterations). An extension benchmark, not part of Table 2.
pub fn chambolle_2d() -> Program {
    parse(&chambolle_2d_source(512, 100)).expect("builtin benchmark parses")
}

/// DSL source of grayscale morphological erosion (a min-filter over the
/// 4-neighborhood), exercising the `min` intrinsic.
pub fn erosion_2d_source(n: usize, iterations: u64) -> String {
    format!(
        "stencil erosion_2d {{
            grid A[{n}][{n}] : f32;
            iterations {iterations};
            A[i][j] = min(A[i][j], min(min(A[i-1][j], A[i+1][j]), min(A[i][j-1], A[i][j+1])));
        }}"
    )
}

/// Morphological erosion at a representative scale (1024 x 1024, 64
/// iterations). An extension benchmark, not part of Table 2.
pub fn erosion_2d() -> Program {
    parse(&erosion_2d_source(1024, 64)).expect("builtin benchmark parses")
}

/// Extension benchmarks beyond Table 2 (intrinsic-using stencils from the
/// paper's application references).
pub fn extensions() -> Vec<Program> {
    vec![chambolle_2d(), erosion_2d()]
}

/// All seven benchmarks at paper scale, in Table 2 order.
pub fn all() -> Vec<Program> {
    vec![
        jacobi_1d(),
        jacobi_2d(),
        jacobi_3d(),
        hotspot_2d(),
        hotspot_3d(),
        fdtd_2d(),
        fdtd_3d(),
    ]
}

/// Looks a benchmark up by its program name (e.g. `"jacobi_2d"`), searching
/// the Table 2 suite and the extensions.
pub fn by_name(name: &str) -> Option<Program> {
    all()
        .into_iter()
        .chain(extensions())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StencilFeatures;
    use stencilcl_grid::Growth;

    #[test]
    fn all_benchmarks_parse_and_check() {
        let programs = all();
        assert_eq!(programs.len(), 7);
        for p in &programs {
            assert!(crate::check(p).is_ok(), "{} fails check", p.name);
        }
    }

    #[test]
    fn table2_sizes_match_paper() {
        let j1 = jacobi_1d();
        assert_eq!(j1.extent().as_slice(), &[131072]);
        assert_eq!(j1.iterations, 1024);
        let j3 = jacobi_3d();
        assert_eq!(j3.extent().as_slice(), &[1024, 1024, 1024]);
        let h3 = hotspot_3d();
        assert_eq!(h3.extent().as_slice(), &[4096, 4096, 128]);
        assert_eq!(h3.iterations, 1000);
        let f3 = fdtd_3d();
        assert_eq!(f3.extent().as_slice(), &[2048, 2048, 2048]);
        assert_eq!(f3.iterations, 500);
    }

    #[test]
    fn jacobi_growths_are_radius_one() {
        for p in [jacobi_1d(), jacobi_2d(), jacobi_3d()] {
            let f = StencilFeatures::extract(&p).unwrap();
            assert_eq!(f.growth, Growth::symmetric(p.dim(), 1), "{}", p.name);
        }
    }

    #[test]
    fn hotspot_has_read_only_power() {
        let f = StencilFeatures::extract(&hotspot_2d()).unwrap();
        assert_eq!(f.read_only_arrays, 1);
        assert_eq!(f.updated_arrays, 1);
        assert_eq!(f.growth, Growth::symmetric(2, 1));
    }

    #[test]
    fn fdtd_chained_growth_is_one_per_side() {
        let f2 = StencilFeatures::extract(&fdtd_2d()).unwrap();
        assert_eq!(f2.growth, Growth::symmetric(2, 1));
        assert_eq!(f2.updated_arrays, 3);
        let f3 = StencilFeatures::extract(&fdtd_3d()).unwrap();
        assert_eq!(f3.growth, Growth::symmetric(3, 1));
        assert_eq!(f3.updated_arrays, 2);
    }

    #[test]
    fn by_name_finds_benchmarks() {
        assert!(by_name("hotspot_3d").is_some());
        assert!(by_name("chambolle_2d").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn chambolle_uses_abs_and_division() {
        let f = StencilFeatures::extract(&chambolle_2d()).unwrap();
        assert_eq!(f.statements.len(), 3);
        assert_eq!(f.ops.special, 2, "two abs calls");
        assert_eq!(f.ops.div, 2);
        assert_eq!(f.read_only_arrays, 1);
        // Chained growth: dv reads lo sides, px/py read dv at hi sides.
        assert_eq!(f.growth, Growth::symmetric(2, 1));
    }

    #[test]
    fn erosion_is_a_pure_min_stencil() {
        let f = StencilFeatures::extract(&erosion_2d()).unwrap();
        assert_eq!(f.ops.minmax, 4);
        assert_eq!(f.ops.add + f.ops.sub + f.ops.mul + f.ops.div, 0);
        assert_eq!(f.growth, Growth::symmetric(2, 1));
    }

    #[test]
    fn shrunk_variants_still_check() {
        use stencilcl_grid::Extent;
        let p = jacobi_2d()
            .with_extent(Extent::new2(32, 32))
            .with_iterations(8);
        assert!(crate::check(&p).is_ok());
        assert_eq!(p.extent().as_slice(), &[32, 32]);
        assert_eq!(p.iterations, 8);
    }
}
