//! Property-based tests for the DSL front end and interpreter.

use proptest::prelude::*;
use stencilcl_grid::{Extent, Point, Rect};
use stencilcl_lang::{parse, tokenize, GridState, Interpreter, StencilFeatures};

proptest! {
    #[test]
    fn lexer_never_panics(src in "[ -~\n]{0,160}") {
        let _ = tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in "[a-z0-9\\[\\]{}()+\\-*/;:=. \n]{0,200}") {
        let _ = parse(&src);
    }

    #[test]
    fn random_symmetric_stencils_parse_and_extract(
        radius in 1i64..3,
        weight in 0.01f64..0.49,
        n in 8usize..24,
        iters in 1u64..6,
    ) {
        let src = format!(
            "stencil s {{ grid A[{n}] : f32; iterations {iters};
             A[i] = {c} * A[i] + {w} * (A[i-{radius}] + A[i+{radius}]); }}",
            c = 1.0 - 2.0 * weight,
            w = weight,
        );
        let p = parse(&src).unwrap();
        let f = StencilFeatures::extract(&p).unwrap();
        prop_assert_eq!(f.growth.lo(0), radius as u64);
        prop_assert_eq!(f.growth.hi(0), radius as u64);
        prop_assert_eq!(f.iterations, iters);
    }

    #[test]
    fn averaging_stencils_respect_maximum_principle(
        n in 8usize..20,
        iters in 1u64..8,
        seed in 0u64..1_000,
    ) {
        // A convex-combination stencil can never exceed the initial range.
        let src = format!(
            "stencil avg {{ grid A[{n}] : f32; iterations {iters};
             A[i] = 0.5 * A[i] + 0.25 * (A[i-1] + A[i+1]); }}"
        );
        let p = parse(&src).unwrap();
        let interp = Interpreter::new(&p);
        let mut s = GridState::new(&p, |_, pt| {
            let x = (pt.coord(0) as u64).wrapping_mul(seed.wrapping_add(17)) % 1000;
            x as f64 / 1000.0
        });
        let before = s.clone();
        interp.run(&mut s, iters).unwrap();
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for (_, &v) in before.grid("A").unwrap().iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        for (_, &v) in s.grid("A").unwrap().iter() {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "value {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn stepping_twice_equals_running_two_iterations(
        n in 8usize..16,
        seed in 0i64..100,
    ) {
        let src = format!(
            "stencil j {{ grid A[{n}][{n}] : f32; iterations 2;
             A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]); }}"
        );
        let p = parse(&src).unwrap();
        let interp = Interpreter::new(&p);
        let init = |_: &str, pt: &Point| ((pt.coord(0) * 7 + pt.coord(1) * 3 + seed) % 11) as f64;
        let mut a = GridState::new(&p, init);
        interp.run(&mut a, 2).unwrap();
        let mut b = GridState::new(&p, init);
        let full = Rect::from_extent(&Extent::new2(n, n));
        interp.step(&mut b, &full).unwrap();
        interp.step(&mut b, &full).unwrap();
        prop_assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
    }

    #[test]
    fn boundary_ring_is_never_touched(
        n in 6usize..16,
        iters in 1u64..5,
        seed in 0i64..50,
    ) {
        let src = format!(
            "stencil j {{ grid A[{n}] : f32; iterations {iters};
             A[i] = A[i-1] + A[i+1]; }}"
        );
        let p = parse(&src).unwrap();
        let interp = Interpreter::new(&p);
        let init = |_: &str, pt: &Point| (pt.coord(0) + seed) as f64;
        let mut s = GridState::new(&p, init);
        interp.run(&mut s, iters).unwrap();
        let a = s.grid("A").unwrap();
        prop_assert_eq!(*a.get(&Point::new1(0)).unwrap(), seed as f64);
        prop_assert_eq!(
            *a.get(&Point::new1(n as i64 - 1)).unwrap(),
            (n as i64 - 1 + seed) as f64
        );
    }

    #[test]
    fn features_are_deterministic(
        n in 8usize..32,
        iters in 1u64..100,
    ) {
        let p = stencilcl_lang::programs::jacobi_2d()
            .with_extent(Extent::new2(n, n))
            .with_iterations(iters);
        let f1 = StencilFeatures::extract(&p).unwrap();
        let f2 = StencilFeatures::extract(&p).unwrap();
        prop_assert_eq!(f1, f2);
    }
}
