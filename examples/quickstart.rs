//! Quickstart: synthesize an FPGA accelerator for a stencil you write
//! yourself, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stencilcl::prelude::*;
use stencilcl::Framework;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a stencil algorithm in the DSL (the stand-in for the paper's
    //    "original stencil algorithm written in OpenCL").
    let source = "
        stencil blur_2d {
            grid img[1024][1024] : f32;
            iterations 128;
            img[i][j] = 0.25 * img[i][j]
                      + 0.1875 * (img[i-1][j] + img[i+1][j]
                                + img[i][j-1] + img[i][j+1]);
        }";
    let program = parse(source)?;

    // 2. The feature extractor derives everything the optimizer needs.
    let features = StencilFeatures::extract(&program)?;
    println!(
        "stencil `{}`: {}-D, growth {:?} per fused iteration, {} flops/update",
        program.name,
        features.dim,
        features.growth,
        features.ops.flops()
    );

    // 3. Run the full framework: design-space exploration for the baseline,
    //    budget-constrained heterogeneous search, code generation, and
    //    simulated execution on the modeled Virtex-7 board.
    let search = SearchConfig {
        parallelism: vec![4, 4],
        unroll: 8,
        unroll_candidates: vec![4, 8],
        max_fused: 64,
        min_tile: 8,
    };
    let report = Framework::new().synthesize(&program, &search)?;
    println!("\n{}\n", report.summary());

    // 4. Inspect the winning designs.
    let b = &report.baseline;
    let h = &report.heterogeneous;
    println!(
        "baseline  : predicted {:.3e} cy, simulated {:.3e} cy (model error {:.1}%)",
        b.prediction().total,
        b.sim.total_cycles,
        100.0 * b.model_error()
    );
    println!(
        "our design: predicted {:.3e} cy, simulated {:.3e} cy (model error {:.1}%)",
        h.prediction().total,
        h.sim.total_cycles,
        100.0 * h.model_error()
    );
    println!(
        "speedup   : {:.2}x with {} BRAM (baseline uses {})",
        report.speedup_simulated(),
        h.point.hls.resources.bram,
        b.point.hls.resources.bram
    );

    // 5. The generated OpenCL design is ready for an SDAccel-style flow.
    println!("\n--- first lines of the generated kernels ---");
    for line in report.code.kernels.lines().take(12) {
        println!("{line}");
    }

    // 6. And the architecture is functionally exact: validate a scaled-down
    //    version against the naive reference.
    let tiny = program
        .with_extent(Extent::new2(64, 64))
        .with_iterations(12);
    let tiny_features = StencilFeatures::extract(&tiny)?;
    let design = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![16, 16])?;
    let partition = Partition::new(tiny_features.extent, &design, &tiny_features.growth)?;
    let diff = verify_design(&tiny, &partition, ExecMode::Threaded, |_, p| {
        (p.coord(0) as f64 * 0.37).sin() + (p.coord(1) as f64 * 0.61).cos()
    })?;
    println!("\nfunctional validation (threaded pipes vs reference): max |diff| = {diff}");
    assert_eq!(diff, 0.0);

    // 7. Every executor above ran on the default engine: each update
    //    statement compiled once to a flat postfix bytecode tape (dense grid
    //    slots, neighbor offsets folded to linear-index deltas) and executed
    //    with branch-free row sweeps. Set STENCILCL_INTERPRET=1 to fall back
    //    to the tree-walking AST interpreter — the differential-testing
    //    oracle — and STENCILCL_UNROLL=<U> to pick the row-sweep unroll
    //    factor. Both engines are bit-exact, as the compiled tape performs
    //    the same f64 operations in the same order per cell:
    let compiled = CompiledProgram::compile(&tiny)?;
    println!(
        "compiled `{}`: {} kernel tape(s), e.g. statement 0 = {} ops over {} grid slot(s)",
        tiny.name,
        compiled.statement_count(),
        compiled.kernel(0).tape().len(),
        compiled.slots().len(),
    );
    Ok(())
}
