//! Dumps the complete generated OpenCL design (kernels + host program) for a
//! benchmark and design point of your choice.
//!
//! ```sh
//! cargo run --release --example codegen_dump [benchmark] [fused]
//! # e.g.
//! cargo run --release --example codegen_dump jacobi_2d 8
//! ```

use stencilcl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "jacobi_2d".to_string());
    let fused: u64 = args.next().map_or(8, |s| s.parse().expect("fused depth"));

    let spec =
        stencilcl::suite::by_name(&name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    // Work on a moderate instance so the dump stays readable.
    let program = spec.scaled(256, 64);
    let features = StencilFeatures::extract(&program)?;

    let dim = program.dim();
    let par: Vec<usize> = vec![2; dim];
    let tiles: Vec<usize> = (0..dim).map(|d| features.extent.len(d) / 4).collect();
    let design = Design::equal(DesignKind::PipeShared, fused, par, tiles)?;
    let partition = Partition::new(features.extent, &design, &features.growth)?;
    let code = generate(&program, &partition, &CodegenOptions::default())?;

    println!("// ===================== kernels.cl =====================");
    println!("{}", code.kernels);
    println!("// ====================== host.cpp ======================");
    println!("{}", code.host);
    eprintln!(
        "[{} kernels, {} pipe declarations, {} lines total]",
        partition.kernel_count(),
        code.kernels.matches("pipe ").count(),
        code.kernels.lines().count() + code.host.lines().count(),
    );
    Ok(())
}
