//! Heat diffusion on a chip floorplan — the HotSpot scenario from the
//! paper's thermal-simulation motivation [Huang et al., DAC'04].
//!
//! A CPU die dissipates power unevenly (two hot cores, one cool cache); the
//! HotSpot stencil relaxes the temperature field toward steady state. This
//! example runs the *functional* pipe-shared accelerator on real data,
//! checks it against the naive solver, and then sizes the paper-scale
//! accelerator with the framework.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use stencilcl::prelude::*;
use stencilcl::Framework;

const N: usize = 96;

/// Synthetic floorplan: power density of two cores and a cache block.
fn power_map(p: &Point) -> f64 {
    let (x, y) = (p.coord(0) as f64 / N as f64, p.coord(1) as f64 / N as f64);
    let core = |cx: f64, cy: f64| {
        let d2 = (x - cx).powi(2) + (y - cy).powi(2);
        1.8 * (-d2 / 0.01).exp()
    };
    // Two hot cores and a mildly active cache slab.
    core(0.3, 0.3) + core(0.7, 0.35) + if y > 0.7 { 0.15 } else { 0.0 }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HotSpot-2D at lab scale: 96x96 die, 60 solver iterations.
    let program = parse(&stencilcl_lang::programs::hotspot_2d_source(N, 60))?;
    let features = StencilFeatures::extract(&program)?;
    println!(
        "HotSpot-2D: {} arrays ({} read-only power map), growth {:?}",
        features.updated_arrays + features.read_only_arrays,
        features.read_only_arrays,
        features.growth
    );

    let init = |name: &str, p: &Point| match name {
        "power" => power_map(p),
        _ => 80.0, // ambient start temperature
    };

    // Reference solve.
    let mut reference = GridState::new(&program, init);
    run_reference(&program, &mut reference)?;

    // Accelerated solve: 3x3 kernels with heterogeneous (balanced) tiles.
    let design = Design::heterogeneous(5, vec![vec![10, 12, 10], vec![10, 12, 10]])?;
    let partition = Partition::new(features.extent, &design, &features.growth)?;
    let mut accelerated = GridState::new(&program, init);
    run_threaded(&program, &partition, &mut accelerated)?;
    let diff = reference.max_abs_diff(&accelerated)?;
    println!("threaded pipe-shared accelerator vs reference: max |diff| = {diff}");
    assert_eq!(diff, 0.0, "the accelerated solve must be exact");

    // Where is the hottest spot?
    let temp = accelerated.grid("temp")?;
    let (mut hottest, mut at) = (f64::MIN, Point::new2(0, 0));
    for (p, &t) in temp.iter() {
        if t > hottest {
            hottest = t;
            at = p;
        }
    }
    println!("hottest cell after 60 iterations: {hottest:.2} at {at}");
    assert!(hottest > 80.0, "cores must heat the die above ambient");

    // Now size the paper-scale accelerator (4096^2, 1000 iterations).
    let spec = stencilcl::suite::by_name("HotSpot-2D").expect("suite benchmark");
    let report = Framework::new().synthesize(&spec.program, &spec.search)?;
    println!("\npaper-scale synthesis:\n{}", report.summary());
    Ok(())
}
