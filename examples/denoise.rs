//! Total-variation image denoising with the Chambolle algorithm — the
//! application the paper cites from Akin et al. [2] and Beretta et al. [20],
//! and the benchmark Nacci et al. used for the baseline architecture.
//!
//! A synthetic image (bright square on a dark background) is corrupted with
//! deterministic pseudo-noise; Chambolle's dual projection iterates on the
//! accelerator architecture (threaded pipes); the denoised image is
//! reconstructed as `g - lambda * div p` and compared against the noisy one.
//!
//! ```sh
//! cargo run --release --example denoise
//! ```

use stencilcl::prelude::*;

const N: usize = 64;
const STEPS: u64 = 40;
const LAMBDA: f64 = 10.0;

/// Ground truth: a bright square on a dark background.
fn clean(p: &Point) -> f64 {
    let inside = (16..48).contains(&p.coord(0)) && (16..48).contains(&p.coord(1));
    if inside {
        1.0
    } else {
        0.0
    }
}

/// Deterministic "noise" from a hash of the coordinates.
fn noise(p: &Point) -> f64 {
    let mut h = (p.coord(0) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (p.coord(1) as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD) >> 40;
    (h as f64 / (1u64 << 24) as f64) * 0.5 - 0.25
}

fn mean_abs_error(img: impl Fn(&Point) -> f64) -> f64 {
    let mut total = 0.0;
    for x in 0..N as i64 {
        for y in 0..N as i64 {
            let p = Point::new2(x, y);
            total += (img(&p) - clean(&p)).abs();
        }
    }
    total / (N * N) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(&stencilcl_lang::programs::chambolle_2d_source(N, STEPS))?;
    let features = StencilFeatures::extract(&program)?;
    println!(
        "Chambolle TV denoising: {} statements, intrinsics: {} abs, {} divisions",
        features.statements.len(),
        features.ops.special,
        features.ops.div
    );

    // Run the dual iteration on the threaded pipe-shared accelerator.
    let init = |name: &str, p: &Point| match name {
        "g" => clean(p) + noise(p),
        _ => 0.0, // dual fields and divergence start at zero
    };
    let design = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![16, 16])?;
    let partition = Partition::new(features.extent, &design, &features.growth)?;
    let mut state = GridState::new(&program, init);
    run_threaded(&program, &partition, &mut state)?;

    // ... and confirm it is exactly the reference computation.
    let mut reference = GridState::new(&program, init);
    run_reference(&program, &mut reference)?;
    let diff = reference.max_abs_diff(&state)?;
    println!("threaded accelerator vs reference: max |diff| = {diff}");
    assert_eq!(diff, 0.0);

    // Reconstruct: u = g - lambda * div(p).
    let g = state.grid("g")?;
    let px = state.grid("px")?;
    let py = state.grid("py")?;
    let denoised = |p: &Point| {
        let at = |grid: &Grid<f64>, q: Point| grid.get(&q).copied().unwrap_or(0.0);
        let div = at(px, *p) - at(px, p.with_coord(1, p.coord(1) - 1)) + at(py, *p)
            - at(py, p.with_coord(0, p.coord(0) - 1));
        at(g, *p) - LAMBDA * div
    };
    let noisy_err = mean_abs_error(|p| clean(p) + noise(p));
    let denoised_err = mean_abs_error(denoised);
    println!("mean |error| vs clean image: noisy {noisy_err:.4} -> denoised {denoised_err:.4}");
    assert!(
        denoised_err < noisy_err,
        "TV denoising must reduce the reconstruction error"
    );

    // Size an accelerator for it with the full framework.
    let search = SearchConfig {
        parallelism: vec![4, 4],
        unroll: 4,
        unroll_candidates: vec![2, 4],
        max_fused: 32,
        min_tile: 8,
    };
    let paper_scale = program
        .with_extent(Extent::new2(512, 512))
        .with_iterations(100);
    let report = stencilcl::Framework::new().synthesize(&paper_scale, &search)?;
    println!("\naccelerator synthesis at 512x512:\n{}", report.summary());
    Ok(())
}
