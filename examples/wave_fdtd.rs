//! Electromagnetic wave propagation with FDTD-2D — the multi-statement,
//! multi-array stencil whose update chain (`ey`, `ex`, then `hz`) stresses
//! the framework's statement-level halo accounting and per-array pipes.
//!
//! A point source excites the magnetic field; the wavefront expands; the
//! pipe-shared accelerator reproduces the naive solver exactly.
//!
//! ```sh
//! cargo run --release --example wave_fdtd
//! ```

use stencilcl::prelude::*;

const N: usize = 64;
const STEPS: u64 = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(&stencilcl_lang::programs::fdtd_2d_source(N, STEPS))?;
    let features = StencilFeatures::extract(&program)?;
    println!(
        "FDTD-2D: {} chained statements, per-iteration growth {:?}",
        features.statements.len(),
        features.growth
    );
    for (i, s) in features.statements.iter().enumerate() {
        println!(
            "  statement {i}: writes {} ({} reads, growth {:?})",
            s.target, s.reads, s.growth
        );
    }

    // A Gaussian pulse in hz at the center; fields start at rest.
    let init = |name: &str, p: &Point| {
        if name != "hz" {
            return 0.0;
        }
        let dx = p.coord(0) as f64 - (N / 2) as f64;
        let dy = p.coord(1) as f64 - (N / 2) as f64;
        (-(dx * dx + dy * dy) / 18.0).exp()
    };

    let mut reference = GridState::new(&program, init);
    run_reference(&program, &mut reference)?;

    // Accelerate with every executor and demand exactness.
    for (label, kind, mode) in [
        (
            "overlapped baseline",
            DesignKind::Baseline,
            ExecMode::Overlapped,
        ),
        ("pipe-shared", DesignKind::PipeShared, ExecMode::PipeShared),
        ("threaded pipes", DesignKind::PipeShared, ExecMode::Threaded),
    ] {
        let design = Design::equal(kind, 4, vec![2, 2], vec![16, 16])?;
        let partition = Partition::new(features.extent, &design, &features.growth)?;
        let diff = verify_design(&program, &partition, mode, init)?;
        println!("{label:<20} max |diff| vs reference: {diff}");
        assert_eq!(diff, 0.0);
    }

    // Physics sanity: the pulse spreads — energy leaves the center region.
    let mut after = GridState::new(&program, init);
    run_reference(&program, &mut after)?;
    let hz = after.grid("hz")?;
    let center = *hz.get(&Point::new2((N / 2) as i64, (N / 2) as i64))?;
    println!("\nhz at source after {STEPS} steps: {center:.4} (started at 1.0)");
    assert!(
        center.abs() < 1.0,
        "the wave must radiate away from the source"
    );

    // Ring energy: sample a circle of radius 16 around the source.
    let ring: f64 = (0..360)
        .step_by(15)
        .map(|deg| {
            let rad = (deg as f64).to_radians();
            let x = (N / 2) as i64 + (16.0 * rad.cos()) as i64;
            let y = (N / 2) as i64 + (16.0 * rad.sin()) as i64;
            hz.get(&Point::new2(x, y)).map(|v| v.abs()).unwrap_or(0.0)
        })
        .sum();
    println!("total |hz| sampled on a radius-16 ring: {ring:.4}");
    assert!(ring > 1e-6, "the wavefront must have reached the ring");
    Ok(())
}
