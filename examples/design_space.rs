//! Design-space exploration, visualized as text: how fused depth, tile size,
//! and architecture interact for Jacobi-2D — the search the paper's
//! performance optimizer automates.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use stencilcl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = programs::jacobi_2d();
    let features = StencilFeatures::extract(&program)?;
    let device = Device::default();
    let cost = CostModel::default();

    println!(
        "Jacobi-2D on {} — predicted latency (cycles) per design point\n",
        device.name
    );
    println!(
        "{:>6} | {:>14} {:>14} {:>14} | {:>9} {:>9}",
        "h", "baseline", "pipe-shared", "heterogeneous", "base BRAM", "het BRAM"
    );
    println!("{}", "-".repeat(80));

    let tile = 128usize;
    for h in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        let eval = |design: Design| {
            stencilcl_opt::evaluate(&program, &features, design, &device, &cost, 8).ok()
        };
        let base = eval(Design::equal(
            DesignKind::Baseline,
            h,
            vec![4, 4],
            vec![tile; 2],
        )?);
        let pipe = eval(Design::equal(
            DesignKind::PipeShared,
            h,
            vec![4, 4],
            vec![tile; 2],
        )?);
        let het = (0..2)
            .map(|d| balance_tiles_for(&features, tile * 4, 4, d, h))
            .collect::<Option<Vec<_>>>()
            .and_then(|lens| Design::heterogeneous(h, lens).ok())
            .and_then(eval);
        let fmt = |p: &Option<DesignPoint>, f: fn(&DesignPoint) -> String| {
            p.as_ref().map_or_else(|| "-".to_string(), f)
        };
        println!(
            "{h:>6} | {:>14} {:>14} {:>14} | {:>9} {:>9}",
            fmt(&base, |p| format!("{:.3e}", p.prediction.total)),
            fmt(&pipe, |p| format!("{:.3e}", p.prediction.total)),
            fmt(&het, |p| format!("{:.3e}", p.prediction.total)),
            fmt(&base, |p| p.hls.resources.bram.to_string()),
            fmt(&het, |p| p.hls.resources.bram.to_string()),
        );
    }

    println!("\nNow let the optimizer pick (paper methodology):");
    let cfg = SearchConfig {
        parallelism: vec![4, 4],
        ..SearchConfig::default()
    };
    let pair = optimize_pair(&program, &device, &cost, &cfg)?;
    println!(
        "  baseline optimum:      h={:<4} tile={:?}  {}",
        pair.baseline.design.fused(),
        (0..2)
            .map(|d| pair.baseline.design.max_tile_len(d))
            .collect::<Vec<_>>(),
        pair.baseline.hls.resources
    );
    println!(
        "  heterogeneous optimum: h={:<4} tile={:?}  {}",
        pair.heterogeneous.design.fused(),
        (0..2)
            .map(|d| pair.heterogeneous.design.max_tile_len(d))
            .collect::<Vec<_>>(),
        pair.heterogeneous.hls.resources
    );
    println!("  predicted speedup: {:.2}x", pair.predicted_speedup());
    Ok(())
}

fn balance_tiles_for(
    features: &StencilFeatures,
    region: usize,
    k: usize,
    dim: usize,
    h: u64,
) -> Option<Vec<usize>> {
    let boundary = features.extent.len(dim) / region > 1;
    balance_tiles(region, k, &features.growth, dim, h, boundary, 8)
}
