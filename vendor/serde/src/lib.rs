//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate provides the subset of serde's surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (value-tree based rather than
//! visitor based), derive macros for plain structs and enums, and the
//! primitive/container impls the workspace's types are built from.
//!
//! The serialized representation follows serde's JSON conventions so the
//! artifacts under `results/` look like what stock serde_json would emit:
//! structs become objects, unit enum variants become strings, data-carrying
//! variants become single-key objects.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// A "wrong shape" error naming what was expected.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization-side re-exports mirroring serde's module layout.
pub mod de {
    /// Owned deserialization (serde's `DeserializeOwned`); with a value-tree
    /// model every [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Non-finite floats serialize as null (serde_json's rule).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the decoded string; only suitable for test fixtures
    /// deserializing `&'static str` fields a bounded number of times.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::expected("fixed-size array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let t = (1i64, "x".to_string());
        assert_eq!(<(i64, String)>::from_value(&t.to_value()).unwrap(), t);
        let arr = [3i64, 1, 2];
        assert_eq!(<[i64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn option_and_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Int(7)).unwrap(), Some(7));
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
