//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! The macros parse the item's token stream directly (the build environment
//! has no `syn`/`quote`) and support exactly the shapes this workspace uses:
//! non-generic structs with named fields, tuple structs, and enums whose
//! variants are unit, tuple, or struct-like. Generated impls follow serde's
//! JSON conventions: structs serialize as objects, unit variants as strings,
//! data-carrying variants as single-key objects, newtypes transparently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed item: its name plus its shape.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{
                     fn to_value(&self) -> serde::Value {{
                         serde::Value::Object(vec![{pairs}])
                     }}
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("serde::Value::Array(vec![{items}])")
            };
            format!(
                "impl serde::Serialize for {name} {{
                     fn to_value(&self) -> serde::Value {{ {body} }}
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => {
                        format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                    }
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let pat = binds.join(", ");
                        let payload = if *arity == 1 {
                            "serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: String = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("serde::Value::Array(vec![{items}])")
                        };
                        format!(
                            "{name}::{vn}({pat}) => serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), {payload})]),"
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let pat = fields.join(", ");
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {pat} }} => serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), serde::Value::Object(vec![{pairs}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{
                     fn to_value(&self) -> serde::Value {{
                         match self {{ {arms} }}
                     }}
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get(\"{f}\")\
                             .ok_or_else(|| serde::DeError::new(\
                                 \"missing field `{f}` of {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{
                         match v {{
                             serde::Value::Object(_) => Ok({name} {{ {inits} }}),
                             other => Err(serde::DeError::expected(\"object for {name}\", other)),
                         }}
                     }}
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))")
            } else {
                let gets: String = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "match v {{
                         serde::Value::Array(items) if items.len() == {arity} =>
                             Ok({name}({gets})),
                         other => Err(serde::DeError::expected(\"array for {name}\", other)),
                     }}"
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!("\"{vn}\" => Ok({name}::{vn}),")),
                    _ => None,
                })
                .collect();
            let keyed_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, arity) => {
                        let body = if *arity == 1 {
                            format!("Ok({name}::{vn}(serde::Deserialize::from_value(payload)?))")
                        } else {
                            let gets: String = (0..*arity)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            format!(
                                "match payload {{
                                     serde::Value::Array(items) if items.len() == {arity} =>
                                         Ok({name}::{vn}({gets})),
                                     other => Err(serde::DeError::expected(
                                         \"array payload for {name}::{vn}\", other)),
                                 }}"
                            )
                        };
                        Some(format!("\"{vn}\" => {{ {body} }}"))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(payload.get(\"{f}\")\
                                         .ok_or_else(|| serde::DeError::new(\
                                             \"missing field `{f}` of {name}::{vn}\"))?)?,"
                                )
                            })
                            .collect();
                        Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"))
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{
                         match v {{
                             serde::Value::Str(s) => match s.as_str() {{
                                 {unit_arms}
                                 other => Err(serde::DeError::new(format!(
                                     \"unknown variant `{{other}}` of {name}\"))),
                             }},
                             serde::Value::Object(fields) if fields.len() == 1 => {{
                                 let (key, payload) = &fields[0];
                                 match key.as_str() {{
                                     {keyed_arms}
                                     other => Err(serde::DeError::new(format!(
                                         \"unknown variant `{{other}}` of {name}\"))),
                                 }}
                             }}
                             other => Err(serde::DeError::expected(\"variant of {name}\", other)),
                         }}
                     }}
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            _ => Item::Struct {
                name,
                fields: Vec::new(),
            },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("derive: enum `{name}` has no body"),
        },
        other => panic!("derive: expected struct or enum, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("derive: expected identifier, found {other:?}"),
    }
}

/// Skips tokens until a comma at angle-bracket depth zero (field separators;
/// commas inside `BTreeMap<K, V>` style generics don't count, commas inside
/// grouped trees like tuples are invisible at this level).
fn skip_to_field_separator(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses `name: Type, ...` field lists, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        // `:` then the type, up to the next top-level comma.
        skip_to_field_separator(&tokens, &mut pos);
        pos += 1; // the comma itself
    }
    fields
}

/// Counts `Type, Type, ...` entries of a tuple struct/variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_field_separator(&tokens, &mut pos);
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_top_level_fields(g.stream())));
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                pos += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Skip an optional `= discriminant` and the trailing comma.
        skip_to_field_separator(&tokens, &mut pos);
        pos += 1;
    }
    variants
}
