//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`vec` strategies with `prop_map` /
//! `prop_flat_map`, `any::<T>()` for primitives, and the `prop_assert*`
//! macros. Generation is deterministic: every test derives its RNG seed from
//! its own name, so failures reproduce without a persistence file (there is
//! no shrinking — the failing case index is reported instead).

use std::fmt;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (the proptest strategy subset).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing `value` every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// String strategies written as regex literals (`src in "[a-z]{0,16}"`).
///
/// Supports the subset this workspace uses: a single character class
/// (literal characters, `a-z` ranges, `\\`-escapes including `\n` and
/// `\t`) followed by a `{lo,hi}` repetition count.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let span = (hi - lo + 1) as u64;
        let len = lo + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let mut chars = rest.chars().peekable();
    let mut class = Vec::new();
    loop {
        let c = chars.next()?;
        match c {
            ']' => break,
            '\\' => {
                let esc = chars.next()?;
                class.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
            }
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    match ahead.peek() {
                        Some(&']') | None => class.push(c),
                        Some(&end) => {
                            chars = ahead;
                            chars.next();
                            for v in c as u32..=end as u32 {
                                class.push(char::from_u32(v)?);
                            }
                        }
                    }
                } else {
                    class.push(c);
                }
            }
        }
    }
    let rep: String = chars.collect();
    let body = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    if class.is_empty() || lo > hi {
        return None;
    }
    Some((class, lo, hi))
}

/// Primitive types `any::<T>()` can generate.
pub trait ArbitraryPrim: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over every value of a primitive type (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of a primitive type.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Module tree mirroring `proptest::collection` etc. under the `prop` name
/// the prelude exposes.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Accepted size specifications for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec`s whose length is drawn from `size` and whose
        /// elements come from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each generated test runs `ProptestConfig::cases` deterministic random
/// cases (seeded from the test's name) and panics on the first failing case,
/// reporting its index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unused_mut)]
                let mut one_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let ::std::result::Result::Err(e) = one_case() {
                    panic!(
                        "proptest case {} of {} failed for {}: {}",
                        case, config.cases, stringify!($name), e
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn regex_class_strategy_respects_class_and_length() {
        let mut rng = crate::TestRng::from_label("regex");
        let strat = "[a-c\\n]{2,5}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| matches!(c, 'a'..='c' | '\n')),
                "bad char in {s:?}"
            );
        }
        let escaped = Strategy::generate(&"[\\[\\]\\-]{4,4}", &mut rng);
        assert!(escaped.chars().all(|c| matches!(c, '[' | ']' | '-')));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_label("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..=9), &mut rng);
            assert!((3..=9).contains(&v));
            let w = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&w));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(x in 1usize..=4, flip in any::<bool>(),
                                   v in prop::collection::vec(0u64..10, 1..4)) {
            if flip {
                return Ok(());
            }
            prop_assert!(x >= 1, "x was {x}");
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn flat_map_composes(len in (1usize..=3).prop_flat_map(|n| prop::collection::vec(0usize..5, n)).prop_map(|v| v.len())) {
            prop_assert!((1..=3).contains(&len));
        }
    }
}
