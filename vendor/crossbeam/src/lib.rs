//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] subset this workspace uses: bounded and
//! unbounded MPMC channels with blocking, timeout, and hangup-aware
//! send/receive, built on `std::sync::{Mutex, Condvar}`.

pub mod channel {
    //! Multi-producer multi-consumer channels (`crossbeam-channel` subset).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered because all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("send timed out"),
                SendTimeoutError::Disconnected(_) => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendTimeoutError<T> {}

    /// Receiving failed because the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Timed send failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The operation timed out; the message is returned.
        Timeout(T),
        /// All receivers disconnected; the message is returned.
        Disconnected(T),
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The operation timed out.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a bounded channel: sends block while `capacity` messages are
    /// in flight (capacity 0 is bumped to 1; this stand-in has no rendezvous
    /// mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity.max(1)))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn full(&self, len: usize) -> bool {
            self.capacity.is_some_and(|cap| len >= cap)
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] when every receiver has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let inner = &*self.inner;
            let mut queue = inner.queue.lock().expect("channel lock");
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                if !inner.full(queue.len()) {
                    queue.push_back(msg);
                    inner.not_empty.notify_one();
                    return Ok(());
                }
                queue = inner.not_full.wait(queue).expect("channel lock");
            }
        }

        /// Blocks until the message is enqueued or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// Returns [`SendTimeoutError`] on timeout or receiver hangup.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let inner = &*self.inner;
            let deadline = Instant::now() + timeout;
            let mut queue = inner.queue.lock().expect("channel lock");
            loop {
                if inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if !inner.full(queue.len()) {
                    queue.push_back(msg);
                    inner.not_empty.notify_one();
                    return Ok(());
                }
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(SendTimeoutError::Timeout(msg));
                };
                let (guard, result) = inner
                    .not_full
                    .wait_timeout(queue, left)
                    .expect("channel lock");
                queue = guard;
                if result.timed_out() && inner.full(queue.len()) {
                    return Err(SendTimeoutError::Timeout(msg));
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has been dropped.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &*self.inner;
            let mut queue = inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = queue.pop_front() {
                    inner.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = inner.not_empty.wait(queue).expect("channel lock");
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError`] on timeout or sender hangup.
        ///
        /// # Panics
        ///
        /// Panics if the channel mutex is poisoned.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let inner = &*self.inner;
            let deadline = Instant::now() + timeout;
            let mut queue = inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = queue.pop_front() {
                    inner.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = inner
                    .not_empty
                    .wait_timeout(queue, left)
                    .expect("channel lock");
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Removes an available message without blocking, if any.
        pub fn try_recv(&self) -> Option<T> {
            let inner = &*self.inner;
            let mut queue = inner.queue.lock().expect("channel lock");
            let msg = queue.pop_front();
            if msg.is_some() {
                inner.not_full.notify_one();
            }
            msg
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the hangup.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn bounded_blocks_and_delivers_in_order() {
        let (tx, rx) = bounded(2);
        let sender = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hangup_is_observable() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn send_timeout_expires_when_full() {
        let (tx, _rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        assert!(tx.send_timeout(2, Duration::from_millis(10)).is_err());
    }
}
