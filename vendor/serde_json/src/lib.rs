//! Offline stand-in for `serde_json` over the vendored [`serde`] value tree.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] with JSON
//! syntax compatible with stock serde_json for the value shapes the vendored
//! derive macros produce. Floats print via Rust's shortest-roundtrip
//! formatting (with a `.0` suffix for integral values), so
//! serialize-then-deserialize is lossless — the `float_roundtrip` guarantee.

use std::fmt;

pub use serde::Value;
use serde::{de::DeserializeOwned, Serialize};

/// Error for JSON encoding/decoding failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or a value tree `T` cannot absorb.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into a raw [`Value`].
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let repr = format!("{x}");
                out.push_str(&repr);
                if !repr.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json's convention for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error::new("invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad float `{text}`")))
    } else if let Ok(i) = text.parse::<i64>() {
        Ok(Value::Int(i))
    } else if let Ok(u) = text.parse::<u64>() {
        Ok(Value::UInt(u))
    } else {
        // Integer overflowing both i64 and u64: fall back to float.
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("jacobi \"2d\"\n".into())),
            (
                "lens".into(),
                Value::Array(vec![Value::Int(-3), Value::UInt(u64::MAX)]),
            ),
            ("x".into(), Value::Float(0.1 + 0.2)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_print_with_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"open").is_err());
    }
}
