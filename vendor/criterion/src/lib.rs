//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark with a short warm-up followed by timed
//! sample batches and prints the per-iteration median, mean, and spread —
//! enough to compare executor implementations without the statistical
//! machinery (or the plotting stack) of real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time spent collecting samples for one benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(1500);
/// Warm-up time before sampling.
const WARMUP_TARGET: Duration = Duration::from_millis(300);

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

/// Per-iteration timing hook passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl Criterion {
    /// Creates a runner with default settings.
    pub fn new() -> Self {
        Criterion { sample_size: 30 }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    /// Starts a benchmark group (settings scoped to the group).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Registers and runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also sizing the batch so one batch is >= ~1ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || elapsed >= WARMUP_TARGET {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        let samples = self.sample_size.max(2);
        let per_sample = MEASURE_TARGET / samples as u32;
        self.samples.clear();
        for _ in 0..samples {
            let mut iters = 0u64;
            let start = Instant::now();
            loop {
                for _ in 0..batch {
                    black_box(routine());
                }
                iters += batch;
                if start.elapsed() >= per_sample {
                    break;
                }
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / iters as f64);
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{name}: median {} mean {} range [{} .. {}] ({} samples)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(lo),
        fmt_time(hi),
        sorted.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Builds the `main`-callable runner functions (`criterion_main!` calls
/// them).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
