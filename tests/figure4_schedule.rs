//! Figure 4's kernel-execution schedule, observed in the simulator: kernels
//! launch sequentially, compute their fused iterations separated by global
//! memory transfers, and synchronize at the region barrier.

use stencilcl::prelude::*;
use stencilcl_sim::{build_plans, simulate_pass};

fn setup(kind: DesignKind, fused: u64) -> (StencilFeatures, Partition) {
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(128, 128))
        .with_iterations(32);
    let f = StencilFeatures::extract(&program).unwrap();
    let d = Design::equal(kind, fused, vec![2, 2], vec![16, 16]).unwrap();
    let p = Partition::new(f.extent, &d, &f.growth).unwrap();
    (f, p)
}

fn sched() -> stencilcl_hls::PipelineSchedule {
    stencilcl_hls::PipelineSchedule {
        ii: 1,
        depth: 20,
        unroll: 4,
    }
}

#[test]
fn kernels_launch_sequentially_with_fixed_delay() {
    let (f, p) = setup(DesignKind::Baseline, 4);
    let device = Device {
        launch_delay: 777,
        ..Device::default()
    };
    let pass = simulate_pass(&build_plans(&f, &p), &sched(), &device);
    for (k, prof) in pass.kernels.iter().enumerate() {
        assert_eq!(prof.launch, 777.0 * (k as f64 + 1.0), "kernel {k}");
    }
}

#[test]
fn all_kernels_release_at_the_barrier_together() {
    let (f, p) = setup(DesignKind::PipeShared, 6);
    let device = Device::default();
    let pass = simulate_pass(&build_plans(&f, &p), &sched(), &device);
    // Every kernel's accounted time spans exactly the pass duration: the
    // difference is absorbed by barrier_wait.
    for (k, prof) in pass.kernels.iter().enumerate() {
        assert!(
            (prof.total() - pass.duration).abs() < 1e-6,
            "kernel {k} accounts {} of {}",
            prof.total(),
            pass.duration
        );
    }
    // At least one kernel (the slowest) has ~zero barrier wait.
    let min_wait = pass
        .kernels
        .iter()
        .map(|p| p.barrier_wait)
        .fold(f64::MAX, f64::min);
    assert!(
        min_wait < 1e-6,
        "slowest kernel gates the barrier, wait {min_wait}"
    );
}

#[test]
fn heterogeneous_tiling_reduces_barrier_wait() {
    // Figure 4(b)'s pathology: with equal tiles the outward-expanding corner
    // kernel gates the barrier; balancing shrinks it and the others wait
    // less.
    // Four tile slots along dim 0 so interior and boundary kernels differ
    // (with two slots per dimension every tile touches a boundary and no
    // rebalancing is possible).
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(256, 256))
        .with_iterations(32);
    let f = StencilFeatures::extract(&program).unwrap();
    let device = Device::default();
    let total_wait = |design: &Design| {
        let p = Partition::new(f.extent, design, &f.growth).unwrap();
        let pass = simulate_pass(&build_plans(&f, &p), &sched(), &device);
        pass.kernels
            .iter()
            .map(|k| k.barrier_wait + k.pipe_wait)
            .sum::<f64>()
    };
    let equal = Design::equal(DesignKind::PipeShared, 8, vec![4, 1], vec![16, 64]).unwrap();
    let balanced_dim0 =
        stencilcl_opt::balance_tiles(64, 4, &f.growth, 0, 8, true, 4).expect("balance feasible");
    assert_ne!(
        balanced_dim0,
        vec![16; 4],
        "balancing must actually move cells"
    );
    let balanced = Design::heterogeneous(8, vec![balanced_dim0, vec![64]]).unwrap();
    assert!(
        total_wait(&balanced) < total_wait(&equal),
        "balancing should cut synchronization wait: {} vs {}",
        total_wait(&balanced),
        total_wait(&equal)
    );
}

#[test]
fn memory_transfers_separate_computation_rounds() {
    // Each kernel spends nonzero time in read before compute and write
    // after — Figure 4's "global memory transfer" separators.
    let (f, p) = setup(DesignKind::Baseline, 4);
    let device = Device::default();
    let pass = simulate_pass(&build_plans(&f, &p), &sched(), &device);
    for prof in &pass.kernels {
        assert!(prof.read > 0.0);
        assert!(prof.write > 0.0);
        assert!(prof.compute_useful > 0.0);
    }
}

#[test]
fn pipe_waits_appear_only_in_pipe_designs() {
    let device = Device {
        pipe_cycles_per_elem: 2_000.0,
        ..Device::default()
    };
    let (fb, pb) = setup(DesignKind::Baseline, 6);
    let base = simulate_pass(&build_plans(&fb, &pb), &sched(), &device);
    assert!(base.kernels.iter().all(|k| k.pipe_wait == 0.0));
    let (fp, pp) = setup(DesignKind::PipeShared, 6);
    let pipe = simulate_pass(&build_plans(&fp, &pp), &sched(), &device);
    let wait: f64 = pipe.kernels.iter().map(|k| k.pipe_wait).sum();
    assert!(wait > 0.0, "absurdly slow pipes must surface as waits");
}
