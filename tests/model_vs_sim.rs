//! Figure 7's property at test scale: the analytical model tracks the
//! simulator across fused depths, finds the same optimum, and the error
//! stays within a band.

use stencilcl::prelude::*;

fn sweep(kind: DesignKind, hs: &[u64]) -> Vec<(u64, f64, f64)> {
    // 128-wide tiles keep the sweep compute-dominated, like the paper's
    // configurations.
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(512, 512))
        .with_iterations(64);
    let f = StencilFeatures::extract(&program).unwrap();
    let device = Device::default();
    let cost = CostModel::default();
    hs.iter()
        .filter_map(|&h| {
            let design = Design::equal(kind, h, vec![4, 4], vec![128, 128]).ok()?;
            let point =
                stencilcl_opt::evaluate(&program, &f, design.clone(), &device, &cost, 8).ok()?;
            let partition = Partition::new(f.extent, &design, &f.growth).ok()?;
            let sim = simulate(&f, &partition, &point.hls.schedule(), &device);
            Some((h, point.prediction.total, sim.total_cycles))
        })
        .collect()
}

const HS: [u64; 8] = [1, 2, 4, 8, 12, 16, 24, 48];

#[test]
fn model_tracks_simulator_for_baseline() {
    let pts = sweep(DesignKind::Baseline, &HS);
    assert_eq!(pts.len(), HS.len());
    // Shallow depths are launch-dominated, where the single-charge launch
    // model is weakest (the paper's own Section 5.6 caveat) — so bound the
    // sweep's mean error and keep a loose cap per point.
    let mean: f64 = pts.iter().map(|(_, p, m)| (m - p).abs() / m).sum::<f64>() / pts.len() as f64;
    assert!(mean < 0.35, "mean error {mean:.2}");
    for (h, pred, meas) in &pts {
        let err = (meas - pred).abs() / meas;
        assert!(
            err < 0.9,
            "h={h}: predicted {pred:.3e} vs measured {meas:.3e} ({err:.2})"
        );
        if *h >= 8 {
            assert!(err < 0.35, "h={h}: deep-fusion error {err:.2} too large");
        }
    }
}

#[test]
fn model_and_simulator_agree_on_the_optimum() {
    for kind in [DesignKind::Baseline, DesignKind::PipeShared] {
        let pts = sweep(kind, &HS);
        let best_pred = pts.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
        let best_meas = pts.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap().0;
        // The paper reports exact matches; allow the optimum to land on a
        // neighboring candidate since the curves are flat near the minimum.
        let idx = |h: u64| HS.iter().position(|&x| x == h).unwrap();
        assert!(
            idx(best_pred).abs_diff(idx(best_meas)) <= 1,
            "{kind:?}: predicted optimum h={best_pred}, measured h={best_meas}"
        );
    }
}

#[test]
fn both_curves_show_the_fusion_sweet_spot() {
    // Latency first falls with h (fewer passes), then rises (halo work):
    // the minimum must be strictly inside the sweep for the baseline.
    let pts = sweep(DesignKind::Baseline, &HS);
    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    let min_meas = pts.iter().map(|p| p.2).fold(f64::MAX, f64::min);
    assert!(min_meas < first.2, "h=1 should not be optimal");
    assert!(min_meas < last.2, "deepest fusion should overshoot");
}

#[test]
fn launch_delay_pushes_measurement_above_prediction() {
    // With an exaggerated launch delay the unmodeled sequential launches
    // dominate: the model must underestimate everywhere (Section 5.6).
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(512, 512))
        .with_iterations(64);
    let f = StencilFeatures::extract(&program).unwrap();
    let device = Device {
        launch_delay: 50_000,
        ..Device::default()
    };
    let cost = CostModel::default();
    for h in [2u64, 8, 16] {
        let design = Design::equal(DesignKind::PipeShared, h, vec![4, 4], vec![32, 32]).unwrap();
        let point =
            stencilcl_opt::evaluate(&program, &f, design.clone(), &device, &cost, 8).unwrap();
        let partition = Partition::new(f.extent, &design, &f.growth).unwrap();
        let sim = simulate(&f, &partition, &point.hls.schedule(), &device);
        assert!(
            point.prediction.total < sim.total_cycles,
            "h={h}: model {:.3e} should underestimate measured {:.3e}",
            point.prediction.total,
            sim.total_cycles
        );
    }
}

#[test]
fn prediction_scales_linearly_with_iteration_count() {
    let device = Device::default();
    let cost = CostModel::default();
    let mk = |iters: u64| {
        let program = programs::jacobi_2d()
            .with_extent(Extent::new2(256, 256))
            .with_iterations(iters);
        let f = StencilFeatures::extract(&program).unwrap();
        let design = Design::equal(DesignKind::Baseline, 4, vec![2, 2], vec![32, 32]).unwrap();
        stencilcl_opt::evaluate(&program, &f, design, &device, &cost, 4)
            .unwrap()
            .prediction
            .total
    };
    let l1 = mk(16);
    let l2 = mk(32);
    assert!(
        (l2 / l1 - 2.0).abs() < 1e-9,
        "doubling H doubles L: {l1} vs {l2}"
    );
}
