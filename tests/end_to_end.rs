//! End-to-end framework runs on scaled-down versions of the paper's
//! benchmarks: search → codegen → simulation, with the Table 3 invariants.

use stencilcl::prelude::*;
use stencilcl::suite;

fn scaled_search(spec: &stencilcl::suite::BenchmarkSpec) -> SearchConfig {
    SearchConfig {
        parallelism: spec.search.parallelism.clone(),
        unroll: 4,
        unroll_candidates: vec![2, 4],
        max_fused: 16,
        min_tile: 4,
    }
}

fn run(name: &str, n: usize, iters: u64) -> SynthesisReport {
    let spec = suite::by_name(name).expect("benchmark exists");
    let program = spec.scaled(n, iters);
    Framework::new()
        .synthesize(&program, &scaled_search(&spec))
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn jacobi_2d_flow_produces_consistent_report() {
    let r = run("Jacobi-2D", 512, 64);
    assert!(
        r.speedup_simulated() >= 1.0,
        "speedup {}",
        r.speedup_simulated()
    );
    assert!(r
        .heterogeneous
        .point
        .hls
        .resources
        .within(&r.baseline.point.hls.resources));
    assert_eq!(
        r.baseline.point.hls.resources.dsp, r.heterogeneous.point.hls.resources.dsp,
        "same parallelism and unroll imply the same DSP datapath"
    );
    assert!(r.code.kernels.contains("__kernel void stencil_k0"));
    assert!(
        r.code.kernels.contains("pipe "),
        "heterogeneous designs use pipes"
    );
    assert!(r.code.host.contains("enqueueTask"));
    // One kernel per tile.
    let kernels = r.code.kernels.matches("__kernel void").count();
    assert_eq!(kernels, r.heterogeneous.point.design.kernel_count());
}

#[test]
fn hotspot_2d_flow_handles_read_only_arrays() {
    let r = run("HotSpot-2D", 256, 32);
    assert!(r.speedup_simulated() >= 1.0);
    assert!(r.code.kernels.contains("__global float *power"));
    assert!(!r.code.host.contains("enqueueReadBuffer(buf_power"));
}

#[test]
fn fdtd_2d_flow_handles_multi_statement_programs() {
    let r = run("FDTD-2D", 256, 32);
    assert!(r.speedup_simulated() >= 1.0);
    // Pipes exist for each of the three updated arrays.
    for array in ["ex", "ey", "hz"] {
        assert!(
            r.code.kernels.contains(&format!("pipe float p_{array}_")),
            "missing pipes for {array}"
        );
    }
}

#[test]
fn jacobi_3d_flow_at_small_scale() {
    let r = run("Jacobi-3D", 64, 16);
    assert!(r.speedup_simulated() >= 1.0);
    assert_eq!(r.heterogeneous.point.design.dim(), 3);
}

#[test]
fn reports_model_accuracy_within_reason() {
    let r = run("Jacobi-2D", 512, 64);
    // The analytical model should land within 50% of the simulator on both
    // designs at this scale (the paper reports 12% against hardware).
    assert!(
        r.baseline.model_error() < 0.5,
        "baseline error {}",
        r.baseline.model_error()
    );
    assert!(
        r.heterogeneous.model_error() < 0.5,
        "heterogeneous error {}",
        r.heterogeneous.model_error()
    );
}

#[test]
fn synthesized_design_kinds_validate_functionally_when_shrunk() {
    let spec = suite::by_name("Jacobi-2D").unwrap();
    let fw = Framework::new();
    let tiny = spec.scaled(32, 6);
    let f = StencilFeatures::extract(&tiny).unwrap();
    let base = Design::equal(DesignKind::Baseline, 3, vec![2, 2], vec![8, 8]).unwrap();
    let base_pt = stencilcl_opt::evaluate(&tiny, &f, base, &fw.device, &fw.cost, 2).unwrap();
    fw.validate(&tiny, &base_pt, ExecMode::Overlapped).unwrap();
    let het = Design::heterogeneous(3, vec![vec![7, 9], vec![9, 7]]).unwrap();
    let het_pt = stencilcl_opt::evaluate(&tiny, &f, het, &fw.device, &fw.cost, 2).unwrap();
    fw.validate(&tiny, &het_pt, ExecMode::PipeShared).unwrap();
    fw.validate(&tiny, &het_pt, ExecMode::Threaded).unwrap();
}
