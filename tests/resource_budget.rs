//! Table 3's resource property: the heterogeneous design the optimizer
//! returns never exceeds the baseline's FF/LUT/DSP/BRAM, and both fit the
//! device.

use stencilcl::prelude::*;

fn scaled(name: &str, n: usize, iters: u64) -> (Program, SearchConfig) {
    let spec = stencilcl::suite::by_name(name).unwrap();
    let program = spec.scaled(n, iters);
    let cfg = SearchConfig {
        parallelism: spec.search.parallelism.clone(),
        unroll: 4,
        unroll_candidates: vec![2, 4, 8],
        max_fused: 32,
        min_tile: 4,
    };
    (program, cfg)
}

#[test]
fn heterogeneous_never_exceeds_baseline_budget() {
    let device = Device::default();
    let cost = CostModel::default();
    for (name, n) in [("Jacobi-2D", 512), ("HotSpot-2D", 512), ("FDTD-2D", 512)] {
        let (program, cfg) = scaled(name, n, 64);
        let pair =
            optimize_pair(&program, &device, &cost, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = pair.baseline.hls.resources;
        let h = pair.heterogeneous.hls.resources;
        assert!(h.within(&b), "{name}: {h} exceeds baseline {b}");
        assert!(b.fits(&device), "{name}: baseline over capacity");
        assert_eq!(
            b.dsp, h.dsp,
            "{name}: DSP must match at equal parallelism+unroll"
        );
    }
}

#[test]
fn pipe_sharing_reduces_bram_at_equal_depth() {
    // The architectural claim behind Table 3's BRAM column, checked directly
    // on the resource model at matched design points.
    let device = Device::default();
    let cost = CostModel::default();
    let program = programs::jacobi_2d();
    let f = StencilFeatures::extract(&program).unwrap();
    for h in [8u64, 16, 32] {
        let usage = |kind| {
            let d = Design::equal(kind, h, vec![4, 4], vec![128, 128]).unwrap();
            let p = Partition::new(f.extent, &d, &f.growth).unwrap();
            estimate_resources(&f, &p, 8, &cost, &device)
        };
        let base = usage(DesignKind::Baseline);
        let pipe = usage(DesignKind::PipeShared);
        assert!(
            pipe.bram < base.bram,
            "h={h}: {} !< {}",
            pipe.bram,
            base.bram
        );
        assert!(pipe.ff <= base.ff, "h={h}: FF must not grow");
        assert!(pipe.lut <= base.lut, "h={h}: LUT must not grow");
    }
}

#[test]
fn budget_constraint_is_actually_binding() {
    // Shrinking the budget below the baseline must change (or break) the
    // heterogeneous search result — proving the constraint is enforced.
    let device = Device::default();
    let cost = CostModel::default();
    let (program, cfg) = scaled("Jacobi-2D", 512, 64);
    let pair = optimize_pair(&program, &device, &cost, &cfg).unwrap();
    let unroll = pair.baseline.hls.unroll;
    let full = pair.heterogeneous.hls.resources;
    let squeezed = ResourceUsage {
        bram: full.bram / 2,
        ..full
    };
    match optimize_heterogeneous(&program, &device, &cost, &cfg, &squeezed, unroll) {
        Ok(point) => assert!(
            point.hls.resources.bram <= squeezed.bram,
            "result must respect the squeezed budget"
        ),
        Err(OptErrorAlias::NoFeasibleDesign { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}

use stencilcl_opt::OptError as OptErrorAlias;

#[test]
fn device_capacity_bounds_the_baseline() {
    // A miniature device forces the baseline search to shallow designs or
    // reports infeasibility — never returns something over capacity.
    let tiny_device = Device {
        ff: 120_000,
        lut: 90_000,
        dsp: 500,
        bram: 200,
        ..Device::default()
    };
    let cost = CostModel::default();
    let (program, cfg) = scaled("Jacobi-2D", 512, 64);
    match optimize_baseline(&program, &tiny_device, &cost, &cfg) {
        Ok(point) => assert!(point.hls.resources.fits(&tiny_device)),
        Err(OptErrorAlias::NoFeasibleDesign { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}
