//! Structural validation of the generated OpenCL designs against the
//! geometry they were generated from.

use stencilcl::prelude::*;
use stencilcl_codegen::boundary::cumulative_growths;
use stencilcl_codegen::pipes::pipe_topology;

fn generated(kind: DesignKind) -> (Program, Partition, GeneratedCode) {
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(128, 128))
        .with_iterations(32);
    let f = StencilFeatures::extract(&program).unwrap();
    let d = Design::equal(kind, 4, vec![2, 2], vec![16, 16]).unwrap();
    let p = Partition::new(f.extent, &d, &f.growth).unwrap();
    let code = generate(&program, &p, &CodegenOptions::default()).unwrap();
    (program, p, code)
}

#[test]
fn one_kernel_per_tile_with_all_arrays_as_arguments() {
    let (program, partition, code) = generated(DesignKind::PipeShared);
    for k in 0..partition.kernel_count() {
        assert!(code
            .kernels
            .contains(&format!("__kernel void stencil_k{k}(")));
    }
    for g in &program.grids {
        assert!(code
            .kernels
            .contains(&format!("__global float *{}", g.name)));
    }
}

#[test]
fn pipe_topology_matches_partition_adjacency() {
    let program = programs::fdtd_2d().with_extent(Extent::new2(128, 128));
    let f = StencilFeatures::extract(&program).unwrap();
    let d = Design::equal(DesignKind::PipeShared, 4, vec![2, 2], vec![16, 16]).unwrap();
    let p = Partition::new(f.extent, &d, &f.growth).unwrap();
    let topo = pipe_topology(&f, &p);
    // Every directed pipe corresponds to a shared face of the canonical
    // region, and has its reverse.
    let tiles = p.canonical_tiles();
    for (array, from, to) in &topo {
        assert!(["ex", "ey", "hz"].contains(&array.as_str()));
        let has_face = tiles[*from].pipe_neighbors().any(|n| n == *to);
        assert!(has_face, "pipe {array} {from}->{to} has no matching face");
        assert!(
            topo.contains(&(array.clone(), *to, *from)),
            "missing reverse pipe"
        );
    }
    // 2x2 grid: 4 undirected adjacencies x 2 directions x 3 arrays.
    assert_eq!(topo.len(), 24);
}

#[test]
fn baseline_emits_no_pipe_constructs() {
    let (_, _, code) = generated(DesignKind::Baseline);
    assert!(!code.kernels.contains("write_pipe_block"));
    assert!(!code.kernels.contains("read_pipe_block"));
    assert!(!code.kernels.contains("xcl_reqd_pipe_depth"));
}

#[test]
fn boundary_functions_encode_the_cone_geometry() {
    let (program, partition, code) = generated(DesignKind::Baseline);
    let f = StencilFeatures::extract(&program).unwrap();
    let tiles = partition.canonical_tiles();
    // Kernel 0's cone base along dim 0: tile.lo - growth * fused.
    let t0 = &tiles[0];
    let cone = t0.cone(DesignKind::Baseline, f.growth, 4);
    if cone.expands_lo(0) {
        let base = t0.rect().lo().coord(0) - 4;
        assert!(
            code.kernels
                .contains(&format!("return max({base} + (it - 1) * 1")),
            "boundary base {base} missing from:\n{}",
            &code.kernels[..2000]
        );
    }
}

#[test]
fn cumulative_growths_match_feature_extraction() {
    let f = StencilFeatures::extract(&programs::fdtd_2d()).unwrap();
    let cum = cumulative_growths(&f);
    assert_eq!(cum.len(), f.statements.len());
    assert_eq!(
        *cum.last().unwrap(),
        f.growth,
        "chain totals the per-iteration growth"
    );
    // Monotone accumulation.
    for w in cum.windows(2) {
        for d in 0..f.dim {
            assert!(w[1].lo(d) >= w[0].lo(d));
            assert!(w[1].hi(d) >= w[0].hi(d));
        }
    }
}

#[test]
fn generated_expression_matches_ast_structure() {
    let program = programs::jacobi_2d();
    let c = stencilcl_codegen::c_expr(&program.updates[0].rhs, "L_");
    // Same accesses as the AST, translated to buffer indexing.
    assert_eq!(
        c.matches("L_A[").count(),
        program.updates[0].rhs.accesses().len()
    );
    assert!(c.contains("L_A[i0 - 1][i1]"));
    assert!(c.contains("L_A[i0][i1 + 1]"));
    assert!(c.starts_with('(') && c.ends_with(')'));
}

#[test]
fn host_enqueues_every_kernel_each_region() {
    let (program, partition, code) = generated(DesignKind::PipeShared);
    let passes = program.iterations.div_ceil(partition.design().fused());
    assert!(code.host.contains(&format!("pass < {passes}")));
    assert!(code
        .host
        .contains(&format!("region < {}", partition.regions_per_pass())));
    assert!(code
        .host
        .contains(&format!("k < {}", partition.kernel_count())));
}

#[test]
fn heterogeneous_kernels_have_distinct_buffer_sizes() {
    let program = programs::jacobi_2d().with_extent(Extent::new2(128, 128));
    let f = StencilFeatures::extract(&program).unwrap();
    let d = Design::heterogeneous(4, vec![vec![12, 20], vec![20, 12]]).unwrap();
    let p = Partition::new(f.extent, &d, &f.growth).unwrap();
    let code = generate(&program, &p, &CodegenOptions::default()).unwrap();
    // Tile 0 is 12x20 (+halos), tile 3 is 20x12 (+halos): local buffer
    // declarations must differ between kernels.
    let decls: Vec<&str> = code
        .kernels
        .lines()
        .filter(|l| l.contains("__local float L_A"))
        .collect();
    assert_eq!(decls.len(), 4);
    assert!(
        decls.iter().any(|d| *d != decls[0]),
        "buffers should differ: {decls:?}"
    );
}
