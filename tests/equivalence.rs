//! Cross-crate functional equivalence: every accelerator design must compute
//! exactly what the naive reference computes, for every benchmark of the
//! suite, under equal and heterogeneous tilings, sequentially and threaded.

use stencilcl::prelude::*;
use stencilcl::suite;

fn init(name: &str, p: &Point) -> f64 {
    let mut v = name.len() as f64 + 0.5;
    for d in 0..p.dim() {
        v = v * 31.0 + p.coord(d) as f64;
    }
    (v * 0.00173).sin()
}

/// Runs one (program, design) pair through a mode and asserts bit equality
/// with the reference.
fn assert_equivalent(program: &Program, design: &Design, mode: ExecMode) {
    let f = StencilFeatures::extract(program).unwrap();
    let partition = Partition::new(program.extent(), design, &f.growth)
        .unwrap_or_else(|e| panic!("{}: {e}", program.name));
    let diff = verify_design(program, &partition, mode, init)
        .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", program.name));
    assert_eq!(
        diff, 0.0,
        "{} under {mode:?} diverged by {diff}",
        program.name
    );
}

fn tiny(name: &str, n: usize, iters: u64) -> Program {
    suite::by_name(name).unwrap().scaled(n, iters)
}

#[test]
fn all_benchmarks_overlapped_equal_tiles() {
    for (name, n, par) in [
        ("Jacobi-1D", 64usize, vec![4]),
        ("Jacobi-2D", 32, vec![2, 2]),
        ("Jacobi-3D", 16, vec![2, 2, 2]),
        ("HotSpot-2D", 32, vec![2, 2]),
        ("HotSpot-3D", 16, vec![2, 2, 2]),
        ("FDTD-2D", 32, vec![2, 2]),
        ("FDTD-3D", 16, vec![2, 2, 2]),
    ] {
        let p = tiny(name, n, 6);
        let dim = p.dim();
        let tile = vec![n / par[0].max(1) / 2; dim];
        let tiles: Vec<usize> = (0..dim).map(|d| n / par[d] / 2).collect();
        let _ = tile;
        let d = Design::equal(DesignKind::Baseline, 3, par, tiles).unwrap();
        assert_equivalent(&p, &d, ExecMode::Overlapped);
    }
}

#[test]
fn all_benchmarks_pipe_shared_equal_tiles() {
    for (name, n, par) in [
        ("Jacobi-1D", 64usize, vec![4]),
        ("Jacobi-2D", 32, vec![2, 2]),
        ("Jacobi-3D", 16, vec![2, 2, 2]),
        ("HotSpot-2D", 32, vec![2, 2]),
        ("HotSpot-3D", 16, vec![2, 2, 2]),
        ("FDTD-2D", 32, vec![2, 2]),
        ("FDTD-3D", 16, vec![2, 2, 2]),
    ] {
        let p = tiny(name, n, 6);
        let dim = p.dim();
        let tiles: Vec<usize> = (0..dim).map(|d| n / par[d] / 2).collect();
        let d = Design::equal(DesignKind::PipeShared, 3, par, tiles).unwrap();
        assert_equivalent(&p, &d, ExecMode::PipeShared);
    }
}

#[test]
fn all_benchmarks_heterogeneous_threaded() {
    for (name, n) in [
        ("Jacobi-2D", 32usize),
        ("HotSpot-2D", 32),
        ("FDTD-2D", 32),
        ("Jacobi-3D", 16),
    ] {
        let p = tiny(name, n, 5);
        let dim = p.dim();
        let half = n / 2;
        // Unequal split per dimension, alternating direction.
        let lens: Vec<Vec<usize>> = (0..dim)
            .map(|d| {
                if d % 2 == 0 {
                    vec![half - 2, half + 2]
                } else {
                    vec![half + 2, half - 2]
                }
            })
            .collect();
        let d = Design::heterogeneous(2, lens).unwrap();
        assert_equivalent(&p, &d, ExecMode::PipeShared);
        assert_equivalent(&p, &d, ExecMode::Threaded);
    }
}

#[test]
fn fused_depth_exceeding_iterations_is_clamped() {
    // h = 8 but only 5 iterations: the last pass fuses fewer.
    let p = tiny("Jacobi-2D", 32, 5);
    let d = Design::equal(DesignKind::PipeShared, 8, vec![2, 2], vec![8, 8]).unwrap();
    assert_equivalent(&p, &d, ExecMode::PipeShared);
    let d = Design::equal(DesignKind::Baseline, 8, vec![2, 2], vec![8, 8]).unwrap();
    assert_equivalent(&p, &d, ExecMode::Overlapped);
}

#[test]
fn single_kernel_designs_degenerate_gracefully() {
    // One tile spanning each region: no pipes, no sharing, still exact.
    let p = tiny("Jacobi-2D", 32, 4);
    let d = Design::equal(DesignKind::Baseline, 2, vec![1, 1], vec![16, 16]).unwrap();
    assert_equivalent(&p, &d, ExecMode::Overlapped);
    let d = Design::equal(DesignKind::PipeShared, 2, vec![1, 1], vec![16, 16]).unwrap();
    assert_equivalent(&p, &d, ExecMode::PipeShared);
}

#[test]
fn region_spanning_whole_grid_has_no_outward_halo() {
    let p = tiny("Jacobi-2D", 32, 6);
    // 2x2 tiles of 16: one region covers the grid.
    let d = Design::equal(DesignKind::PipeShared, 3, vec![2, 2], vec![16, 16]).unwrap();
    assert_equivalent(&p, &d, ExecMode::PipeShared);
    assert_equivalent(&p, &d, ExecMode::Threaded);
}
