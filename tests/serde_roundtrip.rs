//! Every configuration and report type serializes to JSON and back without
//! loss — the experiment binaries persist them under `results/`, and
//! downstream tooling consumes that JSON.

use stencilcl::prelude::*;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string_pretty(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value, "JSON roundtrip changed the value:\n{json}");
}

#[test]
fn geometry_types_roundtrip() {
    roundtrip(&Point::new3(-1, 2, 3));
    roundtrip(&Extent::new3(4, 5, 6));
    roundtrip(&Rect::new(Point::new2(1, 2), Point::new2(5, 6)).unwrap());
    roundtrip(&Growth::new(&[1, 0], &[2, 1]).unwrap());
    roundtrip(&Design::heterogeneous(8, vec![vec![6, 10], vec![8, 8]]).unwrap());
    roundtrip(&Design::equal(DesignKind::Baseline, 4, vec![4, 4], vec![32, 32]).unwrap());
}

#[test]
fn programs_roundtrip_including_intrinsics() {
    for p in programs::all().into_iter().chain(programs::extensions()) {
        roundtrip(&p);
    }
}

#[test]
fn partition_and_tiles_roundtrip() {
    let f = StencilFeatures::extract(&programs::jacobi_2d()).unwrap();
    roundtrip(&f);
    let d = Design::equal(DesignKind::PipeShared, 8, vec![4, 4], vec![128, 128]).unwrap();
    let partition = Partition::new(f.extent, &d, &f.growth).unwrap();
    roundtrip(&partition);
    for tile in partition.canonical_tiles() {
        roundtrip(&tile);
    }
}

#[test]
fn device_cost_and_reports_roundtrip() {
    roundtrip(&Device::adm_pcie_7v3());
    roundtrip(&Device::kc705_kintex7_325t());
    roundtrip(&CostModel::default());
    let program = programs::jacobi_2d();
    let f = StencilFeatures::extract(&program).unwrap();
    let d = Design::equal(DesignKind::PipeShared, 8, vec![4, 4], vec![128, 128]).unwrap();
    let partition = Partition::new(f.extent, &d, &f.growth).unwrap();
    let device = Device::default();
    let hls = synthesize(&program, &partition, 8, &CostModel::default(), &device);
    roundtrip(&hls);
    let inputs = ModelInputs::gather(&f, &partition, &hls, &device);
    roundtrip(&inputs);
    roundtrip(&predict(&inputs));
    let sim = simulate(&f, &partition, &hls.schedule(), &device);
    roundtrip(&sim);
}

#[test]
fn search_results_roundtrip() {
    let program = programs::jacobi_2d()
        .with_extent(Extent::new2(256, 256))
        .with_iterations(32);
    let cfg = SearchConfig {
        parallelism: vec![2, 2],
        unroll: 4,
        unroll_candidates: vec![4],
        max_fused: 8,
        min_tile: 8,
    };
    roundtrip(&cfg);
    let pair = optimize_pair(&program, &Device::default(), &CostModel::default(), &cfg).unwrap();
    roundtrip(&pair);
    roundtrip(&pair.baseline);
}
